//! The persistent best-schedule store.
//!
//! Where [`crate::RecordLog`] remembers every measurement, the
//! [`ScheduleStore`] remembers only the *answer*: the best known schedule
//! per task, keyed by the same FNV-1a [`crate::task_key`] the record log
//! uses. A tuner that finds its task in the store can serve the cached
//! schedule in microseconds instead of re-tuning; a tuner that finds a
//! *structurally identical* task at different extents (matched by
//! [`StoredSchedule::structure_hash`]) can warm-start its descent from the
//! cached optimum's values.
//!
//! On disk the store is an append-only JSONL improvement log with the same
//! durability contract as the record log: every insert is flushed, only
//! newline-terminated lines count on read, and a torn tail is skipped
//! rather than rejected. Replaying the improvement lines keeps the best
//! entry per key, so concurrent histories merge to the same state
//! regardless of interleaving. [`ScheduleStore::compact`] rewrites the file
//! to one line per key through the atomic tmp+fsync+rename codec, in
//! deterministic (ascending task-key) order.
//!
//! All floats — schedule values and the latency incumbent — are encoded as
//! 16-hex-digit bit patterns ([`Json::f64_bits`]), so a schedule read back
//! from the store is bit-identical to the one the tuner measured. That is
//! what lets a cache hit feed directly into the bit-reproducible search
//! state without perturbing it.

use crate::json::Json;
use std::collections::BTreeMap;
use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Read as _, Write as _};
use std::path::{Path, PathBuf};

/// Version of the schedule-store wire format. Bumped whenever a field is
/// added, removed, or re-encoded; readers skip lines from a newer version
/// instead of guessing at their meaning.
pub const SCHEDULE_STORE_VERSION: usize = 1;

/// One cached optimum: the best known schedule for a task, plus the
/// identity needed to validate it against a live search task before use.
#[derive(Clone, Debug, PartialEq)]
pub struct StoredSchedule {
    /// Canonical task identity: [`crate::task_key`] of workload key + device.
    pub task_key: u64,
    /// The subgraph's stable dedup key (display/debugging; matching uses
    /// `task_key`).
    pub workload_key: String,
    /// Device the schedule was tuned for.
    pub device: String,
    /// Hash of the task's sketch *structure* (sketch names and variable
    /// counts, not extents). Two tasks that share it are the same operator
    /// shape at different sizes, so one's optimum is a sensible warm start
    /// for the other. Collisions are harmless: cached values are always
    /// re-validated against the live task's constraints before use.
    pub structure_hash: u64,
    /// Sketch index within the task.
    pub sketch: usize,
    /// Sketch name, validated on use so entries from a stale sketch
    /// generator are ignored instead of corrupting the search state.
    pub sketch_name: String,
    /// Fingerprint of the sketch generator that produced this schedule
    /// (`felix_tir::sketch::generator_hash` in the tuner). An entry whose
    /// fingerprint differs from the live generator's is *stale*: its sketch
    /// index and variable vector may no longer mean what they did, so cache
    /// layers skip it (and count the skip) instead of trusting name/arity
    /// validation to catch the drift. Entries written before versioning
    /// existed decode as `0`, which no live generator produces.
    pub generator: u64,
    /// The schedule-variable assignment (bit-exact).
    pub values: Vec<f64>,
    /// The measured latency of this schedule in milliseconds (bit-exact).
    pub latency_ms: f64,
}

impl StoredSchedule {
    /// Serializes the entry as a single JSON line (no newline).
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("kind", Json::Str("schedule".to_string())),
            ("v", Json::Num(SCHEDULE_STORE_VERSION as f64)),
            ("task", Json::u64_hex(self.task_key)),
            ("workload", Json::Str(self.workload_key.clone())),
            ("device", Json::Str(self.device.clone())),
            ("structure", Json::u64_hex(self.structure_hash)),
            ("sketch", Json::Num(self.sketch as f64)),
            ("sketch_name", Json::Str(self.sketch_name.clone())),
            ("gen", Json::u64_hex(self.generator)),
            (
                "values",
                Json::Arr(self.values.iter().map(|&v| Json::f64_bits(v)).collect()),
            ),
            ("latency_ms", Json::f64_bits(self.latency_ms)),
        ])
    }

    /// Decodes an entry parsed from one store line. Returns `None` for
    /// non-schedule lines and for lines written by a newer format version.
    pub fn from_json(doc: &Json) -> Option<StoredSchedule> {
        if doc.get("kind")?.as_str()? != "schedule" {
            return None;
        }
        if doc.get("v")?.as_usize()? > SCHEDULE_STORE_VERSION {
            return None;
        }
        Some(StoredSchedule {
            task_key: doc.get("task")?.as_u64_hex()?,
            workload_key: doc.get("workload")?.as_str()?.to_string(),
            device: doc.get("device")?.as_str()?.to_string(),
            structure_hash: doc.get("structure")?.as_u64_hex()?,
            sketch: doc.get("sketch")?.as_usize()?,
            sketch_name: doc.get("sketch_name")?.as_str()?.to_string(),
            // Pre-versioning lines carry no fingerprint; 0 marks them as
            // from-an-unknown-generator (always stale to a live tuner).
            generator: doc.get("gen").and_then(Json::as_u64_hex).unwrap_or(0),
            values: doc
                .get("values")?
                .as_arr()?
                .iter()
                .map(Json::as_f64_bits)
                .collect::<Option<Vec<f64>>>()?,
            latency_ms: doc.get("latency_ms")?.as_f64_bits()?,
        })
    }
}

/// A persistent map from task key to best known schedule.
///
/// Inserts append one improvement line and flush it (crash loses at most
/// the line being written); reads replay the intact prefix and keep the
/// best entry per key. The in-memory index is a `BTreeMap`, so every
/// iteration order exposed by the store is deterministic.
#[derive(Debug)]
pub struct ScheduleStore {
    path: PathBuf,
    writer: BufWriter<File>,
    entries: BTreeMap<u64, StoredSchedule>,
    /// Last-update sequence number per task key (in-memory only): replay
    /// order on open, then insert order. Feeds the eviction tiebreak, so
    /// it lives beside the entries rather than in [`StoredSchedule`] —
    /// the wire format and entry equality stay untouched.
    seq: BTreeMap<u64, u64>,
    next_seq: u64,
    max_entries: Option<usize>,
}

impl ScheduleStore {
    /// Opens (creating if needed) a store at `path`, replaying any existing
    /// improvement lines. Torn, corrupt, or newer-version lines are skipped
    /// exactly like in [`crate::read_all_records`].
    ///
    /// # Errors
    ///
    /// Returns any I/O error from reading or opening the file.
    pub fn open(path: impl AsRef<Path>) -> std::io::Result<ScheduleStore> {
        let path = path.as_ref().to_path_buf();
        let mut entries = BTreeMap::new();
        let mut seq = BTreeMap::new();
        let mut next_seq = 0u64;
        let mut bytes = Vec::new();
        match File::open(&path) {
            Ok(mut f) => {
                f.read_to_end(&mut bytes)?;
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(e) => return Err(e),
        }
        // Only newline-terminated lines count: a line missing its
        // terminator is by definition the torn tail of an interrupted
        // append.
        for line in bytes.split_inclusive(|&b| b == b'\n') {
            let Some(line) = line.strip_suffix(b"\n") else { break };
            let Ok(text) = std::str::from_utf8(line) else { continue };
            if text.trim().is_empty() {
                continue;
            }
            let Ok(doc) = Json::parse(text) else { continue };
            let Some(entry) = StoredSchedule::from_json(&doc) else { continue };
            let key = entry.task_key;
            if merge_entry(&mut entries, entry) {
                seq.insert(key, next_seq);
                next_seq += 1;
            }
        }
        let file = OpenOptions::new().create(true).append(true).open(&path)?;
        Ok(ScheduleStore {
            path,
            writer: BufWriter::new(file),
            entries,
            seq,
            next_seq,
            max_entries: None,
        })
    }

    /// Bounds the store to at most `max` entries, enforced at
    /// [`ScheduleStore::compact`] time by deterministic oldest-worst
    /// eviction (see there). Appends between compactions may exceed the
    /// bound transiently; the on-disk improvement log is already bounded
    /// by compaction itself.
    pub fn with_max_entries(mut self, max: usize) -> ScheduleStore {
        self.max_entries = Some(max);
        self
    }

    /// The configured entry bound, if any.
    pub fn max_entries(&self) -> Option<usize> {
        self.max_entries
    }

    /// The store's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Number of distinct tasks with a cached schedule.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the store holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The best known schedule for a task, if any.
    pub fn get(&self, task_key: u64) -> Option<&StoredSchedule> {
        self.entries.get(&task_key)
    }

    /// All entries in ascending task-key order.
    pub fn entries(&self) -> impl Iterator<Item = &StoredSchedule> {
        self.entries.values()
    }

    /// The lowest-latency entry on `device` whose structure hash matches —
    /// the warm-start donor for a task that misses exactly but shares its
    /// sketch structure with a cached one. `exclude_task_key` keeps a task
    /// from donating to itself. Ties break toward the smaller task key
    /// (deterministic via the `BTreeMap` iteration order).
    pub fn best_for_structure(
        &self,
        structure_hash: u64,
        device: &str,
        exclude_task_key: u64,
    ) -> Option<&StoredSchedule> {
        let mut best: Option<&StoredSchedule> = None;
        for entry in self.entries.values() {
            if entry.structure_hash != structure_hash
                || entry.device != device
                || entry.task_key == exclude_task_key
                || !entry.latency_ms.is_finite()
            {
                continue;
            }
            if best.is_none_or(|b| entry.latency_ms < b.latency_ms) {
                best = Some(entry);
            }
        }
        best
    }

    /// Records `entry` if it strictly improves on the stored schedule for
    /// its task (or the task is new). An equal-or-worse entry is a no-op
    /// that leaves the file byte-identical; a non-finite latency is always
    /// rejected. Returns whether the entry was written.
    ///
    /// Exception: an entry whose `generator` fingerprint differs from the
    /// stored one always supersedes it, whatever the latencies — inserts
    /// come from live tuning runs, so the incoming fingerprint is the
    /// current one and the stored entry is stale (its latency belongs to a
    /// schedule the current generator may not even produce).
    ///
    /// # Errors
    ///
    /// Returns any I/O error from appending.
    pub fn insert(&mut self, entry: StoredSchedule) -> std::io::Result<bool> {
        if !entry.latency_ms.is_finite() {
            return Ok(false);
        }
        if let Some(existing) = self.entries.get(&entry.task_key) {
            if existing.generator == entry.generator && existing.latency_ms <= entry.latency_ms {
                return Ok(false);
            }
        }
        let mut line = entry.to_json().write();
        line.push('\n');
        self.writer.write_all(line.as_bytes())?;
        self.writer.flush()?;
        self.seq.insert(entry.task_key, self.next_seq);
        self.next_seq += 1;
        self.entries.insert(entry.task_key, entry);
        Ok(true)
    }

    /// Rewrites the file to exactly one line per task, in ascending
    /// task-key order, through the atomic tmp+fsync+rename codec — a
    /// reader concurrent with a compaction sees either the old improvement
    /// log or the compacted one, never a torn mix.
    ///
    /// When a [`ScheduleStore::with_max_entries`] bound is set and the
    /// store exceeds it, compaction first evicts down to the bound,
    /// oldest-worst first: the eviction order is highest latency first,
    /// ties broken toward the least recently updated entry, then toward
    /// the smaller task key — fully deterministic, so two stores that saw
    /// the same update sequence compact to byte-identical files. Evicted
    /// entries leave the in-memory index too (the store forgets them).
    ///
    /// # Errors
    ///
    /// Returns any I/O error from writing, syncing, renaming, or reopening
    /// the append handle.
    pub fn compact(&mut self) -> std::io::Result<()> {
        if let Some(max) = self.max_entries {
            while self.entries.len() > max {
                let victim = self
                    .entries
                    .values()
                    .max_by(|a, b| {
                        let seq = |e: &StoredSchedule| self.seq.get(&e.task_key).copied();
                        a.latency_ms
                            .total_cmp(&b.latency_ms)
                            .then(seq(b).cmp(&seq(a)))
                            .then(b.task_key.cmp(&a.task_key))
                    })
                    .map(|e| e.task_key)
                    .expect("non-empty: len > max >= 0");
                self.entries.remove(&victim);
                self.seq.remove(&victim);
            }
        }
        let tmp = self.path.with_extension("tmp");
        {
            let mut f = File::create(&tmp)?;
            for entry in self.entries.values() {
                let mut line = entry.to_json().write();
                line.push('\n');
                f.write_all(line.as_bytes())?;
            }
            f.sync_all()?;
        }
        std::fs::rename(&tmp, &self.path)?;
        // The old append handle still points at the pre-rename inode;
        // reopen so future inserts land in the compacted file.
        let file = OpenOptions::new().create(true).append(true).open(&self.path)?;
        self.writer = BufWriter::new(file);
        Ok(())
    }
}

/// Better-only merge within one generator fingerprint (replaying such
/// lines in any order converges to the same per-key minimum); a line with
/// a *different* fingerprint supersedes unconditionally, so in append
/// order the latest generation's improvement log wins. Returns whether
/// the entry landed (callers track update recency off this).
fn merge_entry(entries: &mut BTreeMap<u64, StoredSchedule>, entry: StoredSchedule) -> bool {
    if !entry.latency_ms.is_finite() {
        return false;
    }
    match entries.get(&entry.task_key) {
        Some(existing)
            if existing.generator == entry.generator
                && existing.latency_ms <= entry.latency_ms =>
        {
            false
        }
        _ => {
            entries.insert(entry.task_key, entry);
            true
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task_key;

    fn tmp_path(tag: &str) -> PathBuf {
        static COUNTER: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let n = COUNTER.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        std::env::temp_dir().join(format!(
            "felix-store-{tag}-{}-{n}.jsonl",
            std::process::id()
        ))
    }

    fn sample_entry(i: usize) -> StoredSchedule {
        let workload = format!("dense[{}]", 256 << i);
        StoredSchedule {
            task_key: task_key(&workload, "RTX A5000"),
            workload_key: workload,
            device: "RTX A5000".to_string(),
            structure_hash: 0xABCD_0000 + (i as u64 % 2),
            sketch: i % 2,
            sketch_name: "multi-level-tiling".to_string(),
            generator: 0x5EED_FACE,
            values: vec![2.0, 16.0, 4.0 + i as f64, 0.1 + 0.2],
            latency_ms: 1.25 + i as f64 * 0.1,
        }
    }

    #[test]
    fn round_trips_awkward_floats_bit_exactly() {
        let path = tmp_path("bits");
        let mut store = ScheduleStore::open(&path).expect("open");
        let mut entry = sample_entry(0);
        entry.values = vec![
            0.1 + 0.2,
            1.234_567_890_123_456_7 * (1.0 + 1e-15),
            -0.0,
            f64::MIN_POSITIVE,
            2.225_073_858_507_201e-308,
            std::f64::consts::PI,
        ];
        entry.latency_ms = 1.0 / 3.0;
        assert!(store.insert(entry.clone()).expect("insert"));
        drop(store);
        let store = ScheduleStore::open(&path).expect("reopen");
        let back = store.get(entry.task_key).expect("entry");
        assert_eq!(back, &entry);
        for (a, b) in back.values.iter().zip(&entry.values) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        assert_eq!(back.latency_ms.to_bits(), entry.latency_ms.to_bits());
        // The wire format stores every float as a 16-hex-digit bit pattern,
        // never as a decimal number.
        let text = std::fs::read_to_string(&path).expect("read");
        let doc = Json::parse(text.trim_end()).expect("parse");
        for v in doc.get("values").unwrap().as_arr().unwrap() {
            assert!(matches!(v, Json::Str(s) if s.len() == 16), "{v:?}");
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn truncation_at_every_byte_offset_of_final_entry_recovers_prefix() {
        let path = tmp_path("trunc");
        let mut store = ScheduleStore::open(&path).expect("open");
        for i in 0..3 {
            assert!(store.insert(sample_entry(i)).expect("insert"));
        }
        drop(store);
        let full = std::fs::read(&path).expect("read bytes");
        let last_line_start = full[..full.len() - 1]
            .iter()
            .rposition(|&b| b == b'\n')
            .map_or(0, |p| p + 1);
        let mut prefix: Vec<StoredSchedule> = (0..2).map(sample_entry).collect();
        prefix.sort_by_key(|e| e.task_key); // entries() iterates in key order
        for cut in last_line_start..full.len() {
            std::fs::write(&path, &full[..cut]).expect("truncate");
            let store = ScheduleStore::open(&path).expect("open truncated");
            assert_eq!(
                store.entries().cloned().collect::<Vec<_>>(),
                prefix,
                "cut at byte {cut}/{}",
                full.len()
            );
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn equal_or_worse_reinsert_leaves_file_byte_identical() {
        let path = tmp_path("idem");
        let mut store = ScheduleStore::open(&path).expect("open");
        let entry = sample_entry(0);
        assert!(store.insert(entry.clone()).expect("insert"));
        let before = std::fs::read(&path).expect("read");
        // Bit-identical re-insert: no-op.
        assert!(!store.insert(entry.clone()).expect("reinsert"));
        // Strictly worse: no-op.
        let mut worse = entry.clone();
        worse.latency_ms = entry.latency_ms + 0.5;
        assert!(!store.insert(worse).expect("worse"));
        // Non-finite: always rejected.
        let mut bad = entry.clone();
        bad.latency_ms = f64::NAN;
        assert!(!store.insert(bad).expect("nan"));
        assert_eq!(std::fs::read(&path).expect("read"), before);
        assert_eq!(store.len(), 1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn improvements_append_and_replay_keeps_best() {
        let path = tmp_path("improve");
        let mut store = ScheduleStore::open(&path).expect("open");
        let mut entry = sample_entry(0);
        entry.latency_ms = 2.0;
        assert!(store.insert(entry.clone()).expect("insert"));
        entry.latency_ms = 1.5;
        entry.values[0] = 4.0;
        assert!(store.insert(entry.clone()).expect("improve"));
        drop(store);
        // Both lines are on disk; replay keeps the improvement.
        let lines = std::fs::read_to_string(&path).expect("read");
        assert_eq!(lines.lines().count(), 2);
        let store = ScheduleStore::open(&path).expect("reopen");
        assert_eq!(store.len(), 1);
        assert_eq!(store.get(entry.task_key), Some(&entry));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn compact_rewrites_one_line_per_task_atomically() {
        let path = tmp_path("compact");
        let mut store = ScheduleStore::open(&path).expect("open");
        for latency in [3.0, 2.0, 1.0] {
            let mut entry = sample_entry(0);
            entry.latency_ms = latency;
            assert!(store.insert(entry).expect("insert"));
        }
        assert!(store.insert(sample_entry(1)).expect("insert"));
        store.compact().expect("compact");
        assert!(!path.with_extension("tmp").exists(), "tmp renamed away");
        let lines = std::fs::read_to_string(&path).expect("read");
        assert_eq!(lines.lines().count(), 2, "one line per task");
        // The append handle follows the compacted file.
        let mut improved = sample_entry(1);
        improved.latency_ms -= 1.0;
        assert!(store.insert(improved.clone()).expect("insert"));
        drop(store);
        let store = ScheduleStore::open(&path).expect("reopen");
        assert_eq!(store.len(), 2);
        assert_eq!(store.get(improved.task_key), Some(&improved));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn structure_lookup_picks_best_match_excluding_self() {
        let path = tmp_path("structure");
        let mut store = ScheduleStore::open(&path).expect("open");
        // Entries 0 and 2 share structure hash (i % 2 == 0); entry 2 is
        // slower than entry 0.
        for i in 0..4 {
            assert!(store.insert(sample_entry(i)).expect("insert"));
        }
        let e0 = sample_entry(0);
        let e2 = sample_entry(2);
        let hit = store
            .best_for_structure(e0.structure_hash, "RTX A5000", e2.task_key)
            .expect("donor");
        assert_eq!(hit.task_key, e0.task_key);
        // Excluding the best leaves the runner-up.
        let hit = store
            .best_for_structure(e0.structure_hash, "RTX A5000", e0.task_key)
            .expect("donor");
        assert_eq!(hit.task_key, e2.task_key);
        // Wrong device: no donor.
        assert!(store
            .best_for_structure(e0.structure_hash, "A10G", 0)
            .is_none());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn eviction_parks_at_bound_and_keeps_newest_best() {
        let path = tmp_path("evict");
        let mut store = ScheduleStore::open(&path).expect("open").with_max_entries(2);
        assert_eq!(store.max_entries(), Some(2));
        // Insert 4 tasks: latencies 1.25, 1.35, 1.45, 1.55 (sample_entry
        // order). Worst two (i = 2, 3) must go.
        for i in 0..4 {
            assert!(store.insert(sample_entry(i)).expect("insert"));
        }
        store.compact().expect("compact");
        assert_eq!(store.len(), 2);
        assert!(store.get(sample_entry(0).task_key).is_some());
        assert!(store.get(sample_entry(1).task_key).is_some());
        assert!(store.get(sample_entry(2).task_key).is_none());
        // The file matches the in-memory survivors.
        drop(store);
        let store = ScheduleStore::open(&path).expect("reopen");
        assert_eq!(store.len(), 2);
        // Latency ties evict the least recently updated entry: re-insert
        // two evicted tasks at one latency, refresh the first, bound 1.
        let mut store = store.with_max_entries(1);
        let mut a = sample_entry(2);
        let mut b = sample_entry(3);
        a.latency_ms = 0.5;
        b.latency_ms = 0.5;
        assert!(store.insert(a.clone()).expect("insert"));
        assert!(store.insert(b.clone()).expect("insert"));
        a.values[0] += 1.0;
        a.latency_ms = 0.25; // improvement refreshes a's recency…
        assert!(store.insert(a.clone()).expect("refresh"));
        b.latency_ms = 0.25; // …then b's, so a and b tie at 0.25 with a older
        b.values[0] += 1.0;
        assert!(store.insert(b.clone()).expect("refresh"));
        store.compact().expect("compact");
        assert_eq!(store.len(), 1);
        assert_eq!(store.get(b.task_key), Some(&b), "older tie loses: a evicted");
        std::fs::remove_file(&path).ok();
    }

    /// Property: under a random update sequence, bounded compaction (a)
    /// never exceeds the bound, (b) keeps exactly the lowest-latency
    /// entries (recency only breaks ties), and (c) is deterministic — the
    /// same sequence replayed into a fresh store compacts to a
    /// byte-identical file.
    #[test]
    fn eviction_property_random_sequences() {
        let mut rng = 0x00C0_FFEE_D00D_5EEDu64;
        let mut next = move || {
            rng ^= rng << 13;
            rng ^= rng >> 7;
            rng ^= rng << 17;
            rng
        };
        for case in 0..20 {
            let max = 1 + (next() as usize % 5);
            let updates: Vec<(usize, f64)> = (0..(next() as usize % 40))
                .map(|_| {
                    let task = next() as usize % 8;
                    let latency = 0.25 + (next() % 1000) as f64 / 128.0;
                    (task, latency)
                })
                .collect();
            let run = |tag: &str| {
                let path = tmp_path(tag);
                let mut store =
                    ScheduleStore::open(&path).expect("open").with_max_entries(max);
                for (task, latency) in &updates {
                    let mut entry = sample_entry(*task);
                    entry.latency_ms = *latency;
                    store.insert(entry).expect("insert");
                }
                let before: Vec<StoredSchedule> = store.entries().cloned().collect();
                store.compact().expect("compact");
                let after: Vec<StoredSchedule> = store.entries().cloned().collect();
                let bytes = std::fs::read(&path).expect("read");
                std::fs::remove_file(&path).ok();
                (before, after, bytes)
            };
            let (before, after, bytes) = run(&format!("prop-a-{case}"));
            let (_, after_b, bytes_b) = run(&format!("prop-b-{case}"));
            assert!(after.len() <= max, "case {case}: bound respected");
            assert_eq!(after.len(), before.len().min(max), "case {case}: evicts only past bound");
            // Survivors are the best `max` latencies of the pre-compaction
            // state (ties may go either way on identity, never on count).
            let mut latencies: Vec<f64> = before.iter().map(|e| e.latency_ms).collect();
            latencies.sort_by(f64::total_cmp);
            let mut kept: Vec<f64> = after.iter().map(|e| e.latency_ms).collect();
            kept.sort_by(f64::total_cmp);
            assert_eq!(kept, latencies[..after.len()], "case {case}: keeps the best");
            assert_eq!(after, after_b, "case {case}: deterministic survivors");
            assert_eq!(bytes, bytes_b, "case {case}: byte-identical files");
        }
    }

    #[test]
    fn pre_versioning_lines_decode_with_generator_zero() {
        let mut doc = sample_entry(0).to_json();
        let Json::Obj(fields) = &mut doc else { panic!("obj") };
        fields.retain(|(k, _)| k != "gen");
        let back = StoredSchedule::from_json(&doc).expect("decode");
        assert_eq!(back.generator, 0, "missing fingerprint reads as unknown");
        let mut expected = sample_entry(0);
        expected.generator = 0;
        assert_eq!(back, expected);
    }

    #[test]
    fn newer_version_lines_are_skipped() {
        let path = tmp_path("future");
        let mut store = ScheduleStore::open(&path).expect("open");
        assert!(store.insert(sample_entry(0)).expect("insert"));
        drop(store);
        let mut doc = sample_entry(1).to_json();
        let Json::Obj(fields) = &mut doc else { panic!("obj") };
        fields[1].1 = Json::Num((SCHEDULE_STORE_VERSION + 1) as f64);
        let mut f = OpenOptions::new().append(true).open(&path).expect("open");
        writeln!(f, "{}", doc.write()).expect("write");
        drop(f);
        let store = ScheduleStore::open(&path).expect("reopen");
        assert_eq!(store.entries().cloned().collect::<Vec<_>>(), vec![sample_entry(0)]);
        std::fs::remove_file(&path).ok();
    }
}
