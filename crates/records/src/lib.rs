//! The durable tuning-record store.
//!
//! Real autotuners treat measurement records as the durable asset: Ansor
//! replays its JSON log files to warm-start search, and TenSet is built
//! entirely out of persisted records. This crate gives the reproduction the
//! same property with two primitives:
//!
//! - [`RecordLog`] — an append-only JSONL log of every hardware measurement
//!   (one [`TuningRecord`] per line). Appends are flushed per record, so a
//!   crash loses at most the record being written; the reader recovers the
//!   intact prefix of a truncated log without error.
//! - [`write_document`] / [`read_document`] — crash-safe whole-document
//!   persistence for checkpoints: the document is written to a temporary
//!   file, fsynced, and renamed into place, so a reader never observes a
//!   torn checkpoint.
//!
//! Everything is dependency-free; JSON comes from the in-crate [`json`]
//! module, whose number formatting round-trips every finite `f64`
//! bit-exactly (the foundation of the byte-identical resume guarantee).

pub mod jobs;
pub mod json;
pub mod store;

pub use jobs::{
    read_job_records, JobOutcome, JobRecord, JobWal, QueueState, SubmittedJob, TerminalJob,
    JOB_RECORD_VERSION,
};
pub use json::Json;
pub use store::{ScheduleStore, StoredSchedule, SCHEDULE_STORE_VERSION};

use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Read, Write};
use std::path::{Path, PathBuf};

/// How a logged measurement ended.
#[derive(Clone, Debug, PartialEq)]
pub enum RecordOutcome {
    /// The measurement succeeded with this latency in milliseconds.
    Ok(f64),
    /// The measurement failed after exhausting retries; the payload is the
    /// fault label (e.g. `"timeout"` — see `felix_sim::FaultKind::label`).
    Fault(String),
}

impl RecordOutcome {
    /// The latency if the measurement succeeded.
    pub fn latency_ms(&self) -> Option<f64> {
        match self {
            RecordOutcome::Ok(l) => Some(*l),
            RecordOutcome::Fault(_) => None,
        }
    }
}

/// One persisted measurement: everything needed to replay it into a fresh
/// search state (and to audit a tuning run after the fact).
#[derive(Clone, Debug, PartialEq)]
pub struct TuningRecord {
    /// Canonical task identity: [`task_key`] of the workload key + device.
    pub task_key: u64,
    /// Human-readable task name (display only; matching uses `task_key`).
    pub task_name: String,
    /// Sketch index within the task.
    pub sketch: usize,
    /// Sketch name, validated on replay so records from a stale sketch
    /// generator are skipped instead of corrupting the search state.
    pub sketch_name: String,
    /// The concrete schedule-variable assignment.
    pub values: Vec<f64>,
    /// Measured latency or fault label.
    pub outcome: RecordOutcome,
    /// Retry attempts this candidate consumed before its final outcome.
    pub retries: usize,
    /// Simulated tuning-clock time when the measurement completed.
    pub time_s: f64,
}

impl TuningRecord {
    /// Serializes the record as a single JSON line (no newline).
    pub fn to_json(&self) -> Json {
        let (latency, fault) = match &self.outcome {
            RecordOutcome::Ok(l) => (Json::Num(*l), Json::Null),
            RecordOutcome::Fault(kind) => (Json::Null, Json::Str(kind.clone())),
        };
        Json::obj(vec![
            ("task", Json::u64_hex(self.task_key)),
            ("name", Json::Str(self.task_name.clone())),
            ("sketch", Json::Num(self.sketch as f64)),
            ("sketch_name", Json::Str(self.sketch_name.clone())),
            (
                "values",
                Json::Arr(self.values.iter().map(|&v| Json::Num(v)).collect()),
            ),
            ("latency_ms", latency),
            ("fault", fault),
            ("retries", Json::Num(self.retries as f64)),
            ("time_s", Json::Num(self.time_s)),
        ])
    }

    /// Decodes a record parsed from one log line.
    pub fn from_json(doc: &Json) -> Option<TuningRecord> {
        let outcome = match doc.get("latency_ms") {
            Some(Json::Num(l)) => RecordOutcome::Ok(*l),
            _ => RecordOutcome::Fault(doc.get("fault")?.as_str()?.to_string()),
        };
        Some(TuningRecord {
            task_key: doc.get("task")?.as_u64_hex()?,
            task_name: doc.get("name")?.as_str()?.to_string(),
            sketch: doc.get("sketch")?.as_usize()?,
            sketch_name: doc.get("sketch_name")?.as_str()?.to_string(),
            values: doc
                .get("values")?
                .as_arr()?
                .iter()
                .map(Json::as_f64)
                .collect::<Option<Vec<f64>>>()?,
            outcome,
            retries: doc.get("retries")?.as_usize()?,
            time_s: doc.get("time_s")?.as_f64()?,
        })
    }
}

/// Version of the health-record wire format. Bumped whenever a field is
/// added, removed, or re-encoded; readers skip lines from a newer version
/// instead of guessing at their meaning.
pub const HEALTH_RECORD_VERSION: usize = 1;

/// One persisted descent-supervisor report: the health counters of a tuning
/// round plus the authoritative per-sketch proposer modes *after* the
/// round's degradation/recovery decisions were applied. Replaying these
/// lines restores the degradation state of a resumed run, so it keeps
/// making the same proposer choices as the run that wrote the log.
///
/// Counters are integers (exact in JSON); the one fractional field,
/// `deadline_overrun_s`, is encoded as a 16-hex-digit bit pattern so it
/// round-trips bit-exactly like every other float in the store.
#[derive(Clone, Debug, PartialEq)]
pub struct HealthRecord {
    /// Wire-format version ([`HEALTH_RECORD_VERSION`] when written).
    pub version: usize,
    /// Canonical task identity: [`task_key`] of the workload key + device.
    pub task_key: u64,
    /// Tuning round (0-based) whose descent produced this report.
    pub round: usize,
    /// Non-finite objective/gradient/feature events observed.
    pub nonfinite_events: usize,
    /// Monotone-divergence events observed.
    pub divergence_events: usize,
    /// Seed restarts performed (from dedicated RNG substreams).
    pub seed_restarts: usize,
    /// Gradient-norm clips applied.
    pub grad_clips: usize,
    /// Worker panics caught and quarantined.
    pub panics_caught: usize,
    /// Wall-clock descent overrun charged to the tuning clock (seconds).
    pub deadline_overrun_s: f64,
    /// Per-sketch proposer-mode labels after applying this report (see
    /// `felix_ansor::SketchMode::label`); the authoritative replay state.
    pub modes: Vec<String>,
    /// Simulated tuning-clock time when the report was recorded.
    pub time_s: f64,
}

impl HealthRecord {
    /// Serializes the record as a single JSON line (no newline). The
    /// `"kind":"health"` discriminator separates these lines from
    /// measurement records, which predate kinds and carry none.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("kind", Json::Str("health".to_string())),
            ("v", Json::Num(self.version as f64)),
            ("task", Json::u64_hex(self.task_key)),
            ("round", Json::Num(self.round as f64)),
            ("nonfinite", Json::Num(self.nonfinite_events as f64)),
            ("divergence", Json::Num(self.divergence_events as f64)),
            ("restarts", Json::Num(self.seed_restarts as f64)),
            ("grad_clips", Json::Num(self.grad_clips as f64)),
            ("panics", Json::Num(self.panics_caught as f64)),
            ("overrun_s", Json::f64_bits(self.deadline_overrun_s)),
            (
                "modes",
                Json::Arr(self.modes.iter().map(|m| Json::Str(m.clone())).collect()),
            ),
            ("time_s", Json::Num(self.time_s)),
        ])
    }

    /// Decodes a health record parsed from one log line. Returns `None`
    /// for non-health lines and for lines written by a newer format
    /// version.
    pub fn from_json(doc: &Json) -> Option<HealthRecord> {
        if doc.get("kind")?.as_str()? != "health" {
            return None;
        }
        let version = doc.get("v")?.as_usize()?;
        if version > HEALTH_RECORD_VERSION {
            return None;
        }
        Some(HealthRecord {
            version,
            task_key: doc.get("task")?.as_u64_hex()?,
            round: doc.get("round")?.as_usize()?,
            nonfinite_events: doc.get("nonfinite")?.as_usize()?,
            divergence_events: doc.get("divergence")?.as_usize()?,
            seed_restarts: doc.get("restarts")?.as_usize()?,
            grad_clips: doc.get("grad_clips")?.as_usize()?,
            panics_caught: doc.get("panics")?.as_usize()?,
            deadline_overrun_s: doc.get("overrun_s")?.as_f64_bits()?,
            modes: doc
                .get("modes")?
                .as_arr()?
                .iter()
                .map(|m| m.as_str().map(str::to_string))
                .collect::<Option<Vec<String>>>()?,
            time_s: doc.get("time_s")?.as_f64()?,
        })
    }
}

/// One line of a mixed record log: either a hardware measurement or a
/// descent-supervisor health report.
#[derive(Clone, Debug, PartialEq)]
pub enum Record {
    /// A measurement line (no `kind` field — the original wire format).
    Measurement(TuningRecord),
    /// A `"kind":"health"` supervisor line.
    Health(HealthRecord),
}

/// Canonical task identity: an FNV-1a hash over the workload key (the
/// subgraph's stable dedup key) and the device name, so a log can hold
/// records for many networks and devices and each task replays only its
/// own.
pub fn task_key(workload_key: &str, device_name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    let mut mix = |bytes: &[u8]| {
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
    };
    mix(workload_key.as_bytes());
    mix(b"\x00");
    mix(device_name.as_bytes());
    h
}

/// An append-only JSONL measurement log.
///
/// The writer flushes every record, so an interrupted run loses at most the
/// line being written when the process died. [`RecordLog::read_records`]
/// tolerates exactly that failure mode: a record counts only if its line is
/// newline-terminated and parses, so a truncated tail is skipped silently
/// and every intact record before it is recovered.
#[derive(Debug)]
pub struct RecordLog {
    path: PathBuf,
    writer: BufWriter<File>,
}

impl RecordLog {
    /// Opens (creating if needed) a log at `path` for appending.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from opening the file.
    pub fn open(path: impl AsRef<Path>) -> std::io::Result<RecordLog> {
        let path = path.as_ref().to_path_buf();
        let file = OpenOptions::new().create(true).append(true).open(&path)?;
        Ok(RecordLog { path, writer: BufWriter::new(file) })
    }

    /// The log's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Appends one record and flushes it to the OS. After `append` returns,
    /// a crash of this process can no longer lose the record.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from writing.
    pub fn append(&mut self, record: &TuningRecord) -> std::io::Result<()> {
        self.append_json(&record.to_json())
    }

    /// Appends one supervisor health report, with the same flush-per-append
    /// durability as [`RecordLog::append`].
    ///
    /// # Errors
    ///
    /// Returns any I/O error from writing.
    pub fn append_health(&mut self, record: &HealthRecord) -> std::io::Result<()> {
        self.append_json(&record.to_json())
    }

    fn append_json(&mut self, doc: &Json) -> std::io::Result<()> {
        let mut line = doc.write();
        line.push('\n');
        self.writer.write_all(line.as_bytes())?;
        self.writer.flush()
    }

    /// Reads every intact record currently in the log (including records
    /// appended by earlier processes). A truncated or corrupt tail is
    /// ignored; corruption *before* intact records (torn middle lines from
    /// e.g. concurrent writers) is skipped line-wise the same way.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from reading the file.
    pub fn read_records(&self) -> std::io::Result<Vec<TuningRecord>> {
        read_records(&self.path)
    }
}

/// Reads the intact records of a JSONL log at `path` (see
/// [`RecordLog::read_records`]). A missing file reads as an empty log.
///
/// # Errors
///
/// Returns I/O errors other than the file not existing.
pub fn read_records(path: impl AsRef<Path>) -> std::io::Result<Vec<TuningRecord>> {
    Ok(read_all_records(path)?
        .into_iter()
        .filter_map(|r| match r {
            Record::Measurement(m) => Some(m),
            Record::Health(_) => None,
        })
        .collect())
}

/// Reads every intact line of a mixed log at `path` — measurements and
/// health reports, in append order. A missing file reads as an empty log;
/// torn, corrupt, or unknown-kind lines are skipped exactly like in
/// [`read_records`].
///
/// # Errors
///
/// Returns I/O errors other than the file not existing.
pub fn read_all_records(path: impl AsRef<Path>) -> std::io::Result<Vec<Record>> {
    let mut bytes = Vec::new();
    match File::open(path.as_ref()) {
        Ok(mut f) => {
            f.read_to_end(&mut bytes)?;
        }
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(e),
    }
    let mut out = Vec::new();
    // Only newline-terminated lines count: a line missing its terminator is
    // by definition the torn tail of an interrupted append.
    for line in bytes.split_inclusive(|&b| b == b'\n') {
        let Some(line) = line.strip_suffix(b"\n") else { break };
        let Ok(text) = std::str::from_utf8(line) else { continue };
        if text.trim().is_empty() {
            continue;
        }
        let Ok(doc) = Json::parse(text) else { continue };
        // Measurement lines predate record kinds and carry no `kind`
        // field; any line *with* a kind is dispatched on it, so a future
        // kind is skipped rather than misparsed as a measurement.
        match doc.get("kind") {
            None => {
                if let Some(rec) = TuningRecord::from_json(&doc) {
                    out.push(Record::Measurement(rec));
                }
            }
            Some(_) => {
                if let Some(rec) = HealthRecord::from_json(&doc) {
                    out.push(Record::Health(rec));
                }
            }
        }
    }
    Ok(out)
}

/// Atomically persists a JSON document at `path`: the bytes are written to
/// a sibling temporary file, fsynced, and renamed over the target, so a
/// concurrent or post-crash reader sees either the old document or the new
/// one — never a torn mix.
///
/// # Errors
///
/// Returns any I/O error from writing, syncing, or renaming.
pub fn write_document(path: impl AsRef<Path>, doc: &Json) -> std::io::Result<()> {
    let path = path.as_ref();
    let tmp = path.with_extension("tmp");
    {
        let mut f = File::create(&tmp)?;
        f.write_all(doc.write().as_bytes())?;
        f.write_all(b"\n")?;
        f.sync_all()?;
    }
    std::fs::rename(&tmp, path)
}

/// Reads a JSON document written by [`write_document`].
///
/// # Errors
///
/// Returns the underlying I/O error, or `InvalidData` on malformed JSON.
pub fn read_document(path: impl AsRef<Path>) -> std::io::Result<Json> {
    let text = std::fs::read_to_string(path)?;
    Json::parse(text.trim_end_matches('\n'))
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_path(tag: &str) -> PathBuf {
        static COUNTER: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let n = COUNTER.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        std::env::temp_dir().join(format!(
            "felix-records-{tag}-{}-{n}.jsonl",
            std::process::id()
        ))
    }

    fn sample_record(i: usize) -> TuningRecord {
        TuningRecord {
            task_key: task_key("dense[256]", "RTX A5000"),
            task_name: "dense[256, 512]".to_string(),
            sketch: i % 2,
            sketch_name: "multi-level-tiling".to_string(),
            values: vec![2.0, 16.0, 4.0, i as f64],
            outcome: if i.is_multiple_of(3) {
                RecordOutcome::Fault("timeout".to_string())
            } else {
                RecordOutcome::Ok(1.25 + i as f64 * 0.1)
            },
            retries: i % 2,
            time_s: 3.5 * i as f64 + 0.125,
        }
    }

    #[test]
    fn append_and_read_round_trips() {
        let path = tmp_path("roundtrip");
        let mut log = RecordLog::open(&path).expect("open");
        let records: Vec<TuningRecord> = (0..10).map(sample_record).collect();
        for r in &records {
            log.append(r).expect("append");
        }
        assert_eq!(log.read_records().expect("read"), records);
        // Reopening appends rather than truncating.
        drop(log);
        let mut log = RecordLog::open(&path).expect("reopen");
        log.append(&sample_record(10)).expect("append");
        assert_eq!(read_records(&path).expect("read").len(), 11);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn latencies_round_trip_bit_exactly() {
        let path = tmp_path("bits");
        let mut log = RecordLog::open(&path).expect("open");
        let noisy = 1.234_567_890_123_456_7 * (1.0 + 1e-15);
        let mut rec = sample_record(1);
        rec.outcome = RecordOutcome::Ok(noisy);
        rec.time_s = 0.1 + 0.2; // classic non-representable sum
        log.append(&rec).expect("append");
        let back = log.read_records().expect("read").remove(0);
        let RecordOutcome::Ok(l) = back.outcome else { panic!("ok record") };
        assert_eq!(l.to_bits(), noisy.to_bits());
        assert_eq!(back.time_s.to_bits(), rec.time_s.to_bits());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_log_reads_empty() {
        assert!(read_records(tmp_path("missing")).expect("read").is_empty());
    }

    #[test]
    fn truncated_tail_recovers_prefix() {
        let path = tmp_path("trunc");
        let mut log = RecordLog::open(&path).expect("open");
        for i in 0..5 {
            log.append(&sample_record(i)).expect("append");
        }
        drop(log);
        let full = std::fs::read(&path).expect("read bytes");
        // Chop half of the final line off.
        let cut = full.len() - 10;
        std::fs::write(&path, &full[..cut]).expect("truncate");
        let recovered = read_records(&path).expect("read");
        assert_eq!(recovered, (0..4).map(sample_record).collect::<Vec<_>>());
        std::fs::remove_file(&path).ok();
    }

    fn sample_health(round: usize) -> HealthRecord {
        HealthRecord {
            version: HEALTH_RECORD_VERSION,
            task_key: task_key("dense[256]", "RTX A5000"),
            round,
            nonfinite_events: 3 * round,
            divergence_events: round,
            seed_restarts: 2 * round + 1,
            grad_clips: round,
            panics_caught: round % 2,
            deadline_overrun_s: 0.1 + 0.2, // non-representable sum
            modes: vec!["gd".to_string(), "evo".to_string()],
            time_s: 12.5 * round as f64,
        }
    }

    #[test]
    fn health_record_round_trips_bit_exactly() {
        let path = tmp_path("health");
        let mut log = RecordLog::open(&path).expect("open");
        let rec = sample_health(2);
        log.append_health(&rec).expect("append");
        let all = read_all_records(&path).expect("read");
        assert_eq!(all.len(), 1);
        let Record::Health(back) = &all[0] else { panic!("health record") };
        assert_eq!(back, &rec);
        assert_eq!(
            back.deadline_overrun_s.to_bits(),
            rec.deadline_overrun_s.to_bits()
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn mixed_log_preserves_append_order_and_filters_by_kind() {
        let path = tmp_path("mixed");
        let mut log = RecordLog::open(&path).expect("open");
        log.append(&sample_record(1)).expect("append");
        log.append_health(&sample_health(0)).expect("append");
        log.append(&sample_record(2)).expect("append");
        let all = read_all_records(&path).expect("read all");
        assert_eq!(
            all,
            vec![
                Record::Measurement(sample_record(1)),
                Record::Health(sample_health(0)),
                Record::Measurement(sample_record(2)),
            ]
        );
        // The measurement-only reader (pre-health callers) skips health
        // lines instead of choking on them.
        assert_eq!(
            read_records(&path).expect("read"),
            vec![sample_record(1), sample_record(2)]
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn newer_version_and_unknown_kind_lines_are_skipped() {
        let path = tmp_path("future");
        let mut log = RecordLog::open(&path).expect("open");
        let mut future = sample_health(1);
        future.version = HEALTH_RECORD_VERSION + 1;
        log.append_health(&future).expect("append");
        drop(log);
        let mut f = OpenOptions::new().append(true).open(&path).expect("open");
        writeln!(f, "{{\"kind\":\"telemetry\",\"x\":1}}").expect("write");
        writeln!(f, "{}", sample_record(4).to_json().write()).expect("write");
        drop(f);
        assert_eq!(
            read_all_records(&path).expect("read"),
            vec![Record::Measurement(sample_record(4))]
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn task_key_separates_workloads_and_devices() {
        let a = task_key("dense[256]", "RTX A5000");
        assert_eq!(a, task_key("dense[256]", "RTX A5000"));
        assert_ne!(a, task_key("dense[512]", "RTX A5000"));
        assert_ne!(a, task_key("dense[256]", "A10G"));
        // The separator prevents boundary ambiguity.
        assert_ne!(task_key("ab", "c"), task_key("a", "bc"));
    }

    #[test]
    fn document_write_is_atomic_and_round_trips() {
        let path = tmp_path("doc");
        let doc = Json::obj(vec![
            ("clock", Json::f64_bits(123.456)),
            ("round", Json::Num(7.0)),
        ]);
        write_document(&path, &doc).expect("write");
        assert_eq!(read_document(&path).expect("read"), doc);
        // Overwrite goes through the same tmp+rename path.
        let doc2 = Json::obj(vec![("round", Json::Num(8.0))]);
        write_document(&path, &doc2).expect("rewrite");
        assert_eq!(read_document(&path).expect("read"), doc2);
        assert!(!path.with_extension("tmp").exists(), "tmp file renamed away");
        std::fs::remove_file(&path).ok();
    }
}
