//! Durable job-queue records for the tuning service.
//!
//! The serving tier (`felix-serve`) fronts the tuner with a write-ahead
//! log: every submitted job is appended here *before* the client sees an
//! acknowledgment, every terminal transition is appended *after* the job's
//! result document is durably on disk. Because the WAL is the only
//! authority on queue membership, a worker killed at any instant recovers
//! the exact queue by replaying the log — claims are observability-only
//! and carry no recovery weight (a claimed-but-incomplete job is simply
//! still pending).
//!
//! ## Job lifecycle
//!
//! Every job walks a durable state machine:
//!
//! ```text
//! submitted ──────────────► done         (job-done)
//!     │      run to budget
//!     ├─────────────────────► cancelled   (job-cancel … job-cancelled)
//!     │      cancel honored between ticks
//!     ├─────────────────────► expired     (job-expired, deadline hit)
//!     │
//!     └─────────────────────► quarantined (job-crash ×N … job-quarantined)
//!            worker panics/dies N times
//! ```
//!
//! The four terminal states are each proven by their own WAL line,
//! appended only after the job's result document is atomically on disk, so
//! a terminal line is proof the (possibly partial) result can be served.
//! `job-cancel` records the *request* (durable before the cancel is
//! acknowledged); the matching `job-cancelled` terminal line lands when a
//! worker honors it between tuning rounds. `job-crash` persists a
//! cumulative per-job crash counter so a poison job is parked as
//! `quarantined` on replay instead of crash-looping the daemon forever.
//!
//! The wire format follows the crate's house rules: JSONL with one record
//! per line, flush-per-append durability, torn tails skipped on read, and
//! every fractional number encoded as a 16-hex-digit bit pattern so replay
//! is bit-exact. [`JobWal::compact`] rewrites the log to its canonical
//! minimal form (one submit line plus at most cancel/crash/terminal lines
//! per job) through the same atomic tmp+fsync+rename codec the schedule
//! store uses, so terminal jobs stop costing startup time and disk.

use crate::Json;
use std::collections::{BTreeMap, BTreeSet};
use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Read, Write};
use std::path::{Path, PathBuf};

/// Version of the job-record wire format. Bumped whenever a field is
/// added, removed, or re-encoded; readers skip lines from a newer version
/// instead of guessing at their meaning. Version 2 added the lifecycle
/// records (`job-cancel`, `job-crash`, and the non-`done` terminal lines)
/// and the submit timestamp; version-1 lines still decode (the timestamp
/// reads as 0).
pub const JOB_RECORD_VERSION: usize = 2;

/// How a job left the queue — the four terminal states of the lifecycle
/// state machine. Exactly one terminal WAL line exists per finished job
/// (duplicates from idempotent re-finalization keep the first).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JobOutcome {
    /// Ran its full round budget.
    Done,
    /// A durable cancel request was honored between tuning rounds; the
    /// result document holds the partial state at the last round boundary.
    Cancelled,
    /// The job's wall-clock deadline elapsed before its budget did; the
    /// result document holds the partial state at the last round boundary.
    Expired,
    /// The job crashed its worker too many times and is parked; the result
    /// document is an error report.
    Quarantined,
}

impl JobOutcome {
    /// The WAL line kind for this terminal state.
    pub fn kind(self) -> &'static str {
        match self {
            JobOutcome::Done => "job-done",
            JobOutcome::Cancelled => "job-cancelled",
            JobOutcome::Expired => "job-expired",
            JobOutcome::Quarantined => "job-quarantined",
        }
    }

    /// The client-facing state string (`"done"`, `"cancelled"`,
    /// `"expired"`, `"quarantined"`).
    pub fn state(self) -> &'static str {
        match self {
            JobOutcome::Done => "done",
            JobOutcome::Cancelled => "cancelled",
            JobOutcome::Expired => "expired",
            JobOutcome::Quarantined => "quarantined",
        }
    }

    fn from_kind(kind: &str) -> Option<JobOutcome> {
        Some(match kind {
            "job-done" => JobOutcome::Done,
            "job-cancelled" => JobOutcome::Cancelled,
            "job-expired" => JobOutcome::Expired,
            "job-quarantined" => JobOutcome::Quarantined,
            _ => return None,
        })
    }
}

/// One line of the job WAL.
///
/// The job spec and result travel as opaque [`Json`] documents: the WAL
/// layer guarantees durability and ordering, while the serving tier owns
/// the schema — so a spec-format change never forces a WAL-format bump.
#[derive(Clone, Debug, PartialEq)]
pub enum JobRecord {
    /// A job entered the queue. Appended (and flushed) before the client
    /// is acknowledged, so an acked job can never be lost.
    Submitted {
        /// Queue-wide job identity, assigned by the frontend.
        job_id: u64,
        /// Owning tenant (namespaces the schedule store and fairness).
        tenant: String,
        /// Opaque job spec, interpreted by the serving tier.
        spec: Json,
        /// Wall-clock submission time (Unix milliseconds). Anchors the
        /// job's deadline across restarts; `0` for pre-deadline lines.
        /// Observability and deadline arithmetic only — it never feeds the
        /// deterministic tuning state.
        submitted_at_ms: u64,
    },
    /// A worker shard picked the job up. Observability only: replay
    /// ignores claims for recovery, so a crash between claim and
    /// completion leaves the job pending, exactly as required — and
    /// compaction drops claim lines entirely.
    Claimed {
        /// The claimed job.
        job_id: u64,
        /// Claiming worker shard index.
        shard: usize,
    },
    /// A cancel request was durably accepted. The job stays pending until
    /// a worker honors the request between ticks and appends the
    /// [`JobOutcome::Cancelled`] terminal line; a crash in between leaves
    /// the request standing, so the cancel is honored on replay.
    CancelRequested {
        /// The job to cancel.
        job_id: u64,
    },
    /// The job's worker crashed (panicked or died) while running it.
    /// `count` is cumulative, so replay takes the maximum and duplicate
    /// lines are harmless. At the quarantine threshold the next
    /// adoption parks the job instead of running it.
    CrashCounted {
        /// The crashing job.
        job_id: u64,
        /// Total crashes attributed to this job so far.
        count: u32,
    },
    /// The job reached a terminal state and its result document is
    /// durable. Appended *after* the result write, so a terminal line is
    /// proof the result can be served.
    Finished {
        /// The finished job.
        job_id: u64,
        /// Which terminal state.
        outcome: JobOutcome,
        /// Tuning rounds the job consumed.
        rounds: usize,
        /// Best end-to-end latency achieved (milliseconds; bit-exact on
        /// the wire; `inf` when nothing was measured).
        latency_ms: f64,
        /// Opaque result summary, interpreted by the serving tier.
        result: Json,
    },
}

impl JobRecord {
    /// A [`JobOutcome::Done`] terminal record (the common completion
    /// path).
    pub fn done(job_id: u64, rounds: usize, latency_ms: f64, result: Json) -> JobRecord {
        JobRecord::Finished { job_id, outcome: JobOutcome::Done, rounds, latency_ms, result }
    }

    /// The record's job id.
    pub fn job_id(&self) -> u64 {
        match *self {
            JobRecord::Submitted { job_id, .. }
            | JobRecord::Claimed { job_id, .. }
            | JobRecord::CancelRequested { job_id }
            | JobRecord::CrashCounted { job_id, .. }
            | JobRecord::Finished { job_id, .. } => job_id,
        }
    }

    /// Serializes the record as a single JSON line (no newline).
    pub fn to_json(&self) -> Json {
        let (kind, mut fields) = match self {
            JobRecord::Submitted { job_id, tenant, spec, submitted_at_ms } => (
                "job-submit",
                vec![
                    ("job", Json::u64_hex(*job_id)),
                    ("tenant", Json::Str(tenant.clone())),
                    ("spec", spec.clone()),
                    ("at_ms", Json::u64_hex(*submitted_at_ms)),
                ],
            ),
            JobRecord::Claimed { job_id, shard } => (
                "job-claim",
                vec![
                    ("job", Json::u64_hex(*job_id)),
                    ("shard", Json::Num(*shard as f64)),
                ],
            ),
            JobRecord::CancelRequested { job_id } => {
                ("job-cancel", vec![("job", Json::u64_hex(*job_id))])
            }
            JobRecord::CrashCounted { job_id, count } => (
                "job-crash",
                vec![
                    ("job", Json::u64_hex(*job_id)),
                    ("count", Json::Num(f64::from(*count))),
                ],
            ),
            JobRecord::Finished { job_id, outcome, rounds, latency_ms, result } => (
                outcome.kind(),
                vec![
                    ("job", Json::u64_hex(*job_id)),
                    ("rounds", Json::Num(*rounds as f64)),
                    ("latency_ms", Json::f64_bits(*latency_ms)),
                    ("result", result.clone()),
                ],
            ),
        };
        let mut all = vec![
            ("kind", Json::Str(kind.to_string())),
            ("v", Json::Num(JOB_RECORD_VERSION as f64)),
        ];
        all.append(&mut fields);
        Json::obj(all)
    }

    /// Decodes a job record parsed from one WAL line. Returns `None` for
    /// non-job lines and for lines written by a newer format version.
    pub fn from_json(doc: &Json) -> Option<JobRecord> {
        let kind = doc.get("kind")?.as_str()?;
        if !kind.starts_with("job-") {
            return None;
        }
        if doc.get("v")?.as_usize()? > JOB_RECORD_VERSION {
            return None;
        }
        let job_id = doc.get("job")?.as_u64_hex()?;
        if let Some(outcome) = JobOutcome::from_kind(kind) {
            return Some(JobRecord::Finished {
                job_id,
                outcome,
                rounds: doc.get("rounds")?.as_usize()?,
                latency_ms: doc.get("latency_ms")?.as_f64_bits()?,
                result: doc.get("result")?.clone(),
            });
        }
        match kind {
            "job-submit" => Some(JobRecord::Submitted {
                job_id,
                tenant: doc.get("tenant")?.as_str()?.to_string(),
                spec: doc.get("spec")?.clone(),
                // Version-1 lines predate deadlines and carry no stamp.
                submitted_at_ms: doc.get("at_ms").and_then(Json::as_u64_hex).unwrap_or(0),
            }),
            "job-claim" => Some(JobRecord::Claimed {
                job_id,
                shard: doc.get("shard")?.as_usize()?,
            }),
            "job-cancel" => Some(JobRecord::CancelRequested { job_id }),
            "job-crash" => Some(JobRecord::CrashCounted {
                job_id,
                count: u32::try_from(doc.get("count")?.as_usize()?).ok()?,
            }),
            _ => None,
        }
    }
}

/// The append side of the job WAL: flush-per-append, so once `append`
/// returns the record survives any crash of this process.
#[derive(Debug)]
pub struct JobWal {
    path: PathBuf,
    writer: BufWriter<File>,
}

impl JobWal {
    /// Opens (creating if needed) the WAL at `path` for appending.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from opening the file.
    pub fn open(path: impl AsRef<Path>) -> std::io::Result<JobWal> {
        let path = path.as_ref().to_path_buf();
        let file = OpenOptions::new().create(true).append(true).open(&path)?;
        Ok(JobWal { path, writer: BufWriter::new(file) })
    }

    /// The WAL's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Appends one record and flushes it to the OS.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from writing.
    pub fn append(&mut self, record: &JobRecord) -> std::io::Result<()> {
        let mut line = record.to_json().write();
        line.push('\n');
        self.writer.write_all(line.as_bytes())?;
        self.writer.flush()
    }

    /// Reads every intact record currently in the WAL (see
    /// [`read_job_records`]).
    ///
    /// # Errors
    ///
    /// Returns any I/O error from reading the file.
    pub fn read_records(&self) -> std::io::Result<Vec<JobRecord>> {
        read_job_records(&self.path)
    }

    /// Rewrites the WAL to the canonical record sequence of `state` (see
    /// [`QueueState::canonical_records`]) through the atomic
    /// tmp+fsync+rename codec, mirroring `ScheduleStore::compact`: a
    /// reader (or a crash) concurrent with the compaction sees either the
    /// old log or the compacted one, never a torn mix, and both replay to
    /// the same recovery state. Claim lines are dropped (they carry no
    /// recovery weight), duplicate and superseded lines collapse to one
    /// line each. Returns the number of lines written.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from writing, syncing, renaming, or reopening
    /// the append handle.
    pub fn compact(&mut self, state: &QueueState) -> std::io::Result<usize> {
        let records = state.canonical_records();
        let tmp = self.path.with_extension("tmp");
        {
            let mut f = File::create(&tmp)?;
            for record in &records {
                let mut line = record.to_json().write();
                line.push('\n');
                f.write_all(line.as_bytes())?;
            }
            f.sync_all()?;
        }
        std::fs::rename(&tmp, &self.path)?;
        // The old append handle still points at the pre-rename inode;
        // reopen so future appends land in the compacted file.
        let file = OpenOptions::new().create(true).append(true).open(&self.path)?;
        self.writer = BufWriter::new(file);
        Ok(records.len())
    }
}

/// Reads the intact job records of a WAL at `path`, in append order. A
/// missing file reads as an empty log; torn, corrupt, non-job, or
/// newer-version lines are skipped with the same rules as
/// [`crate::read_all_records`].
///
/// # Errors
///
/// Returns I/O errors other than the file not existing.
pub fn read_job_records(path: impl AsRef<Path>) -> std::io::Result<Vec<JobRecord>> {
    let mut bytes = Vec::new();
    match File::open(path.as_ref()) {
        Ok(mut f) => {
            f.read_to_end(&mut bytes)?;
        }
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(e),
    }
    let mut out = Vec::new();
    // Only newline-terminated lines count: a line missing its terminator is
    // by definition the torn tail of an interrupted append.
    for line in bytes.split_inclusive(|&b| b == b'\n') {
        let Some(line) = line.strip_suffix(b"\n") else { break };
        let Ok(text) = std::str::from_utf8(line) else { continue };
        if text.trim().is_empty() {
            continue;
        }
        let Ok(doc) = Json::parse(text) else { continue };
        if let Some(rec) = JobRecord::from_json(&doc) {
            out.push(rec);
        }
    }
    Ok(out)
}

/// A job still in the queue (submitted, not yet terminal).
#[derive(Clone, Debug, PartialEq)]
pub struct SubmittedJob {
    /// Queue-wide job identity.
    pub job_id: u64,
    /// Owning tenant.
    pub tenant: String,
    /// Opaque job spec as submitted.
    pub spec: Json,
    /// Wall-clock submission time (Unix milliseconds; `0` for
    /// pre-deadline WAL lines). Anchors the job's deadline across
    /// restarts.
    pub submitted_at_ms: u64,
}

/// A job in a terminal state, as proven by its terminal WAL line.
#[derive(Clone, Debug, PartialEq)]
pub struct TerminalJob {
    /// Which terminal state the job reached.
    pub outcome: JobOutcome,
    /// Tuning rounds the job consumed.
    pub rounds: usize,
    /// Best end-to-end latency achieved (milliseconds; `inf` when nothing
    /// was measured).
    pub latency_ms: f64,
    /// Opaque result summary (partial for cancelled/expired jobs, an
    /// error report for quarantined ones).
    pub result: Json,
}

/// The queue state a WAL replays to. Deterministic: the same record
/// sequence always yields the same state, and claims never affect
/// recovery.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct QueueState {
    /// Every submitted job, in WAL (= acknowledgment) order, including
    /// terminal ones. Duplicate submit lines for one id keep the first.
    pub submitted: Vec<SubmittedJob>,
    /// Last observed claim per job (observability only; dropped by
    /// compaction).
    pub claims: BTreeMap<u64, usize>,
    /// Jobs with a standing cancel request and no terminal record yet —
    /// the worker honors these between ticks (or at adoption after a
    /// restart). Requests against already-terminal jobs are normalized
    /// away at the end of replay.
    pub cancel_requested: BTreeSet<u64>,
    /// Cumulative crash count per non-terminal job (duplicate lines merge
    /// by maximum). Counts for terminal jobs are normalized away — their
    /// story ended, one way or another.
    pub crash_counts: BTreeMap<u64, u32>,
    /// Finished jobs by id, whatever their terminal state. Duplicate
    /// terminal lines for one id keep the first (re-finalization after a
    /// crash re-appends identically).
    pub terminal: BTreeMap<u64, TerminalJob>,
}

impl QueueState {
    /// Replays a record sequence (as read by [`read_job_records`]) into
    /// the queue state.
    ///
    /// The result is *normalized*: cancel requests and crash counts that
    /// target terminal or never-submitted jobs are dropped, so replaying a
    /// log and replaying its [`QueueState::canonical_records`] compaction
    /// yield the same state (claims aside, which compaction drops).
    pub fn replay(records: &[JobRecord]) -> QueueState {
        let mut state = QueueState::default();
        for rec in records {
            match rec {
                JobRecord::Submitted { job_id, tenant, spec, submitted_at_ms } => {
                    if !state.submitted.iter().any(|j| j.job_id == *job_id) {
                        state.submitted.push(SubmittedJob {
                            job_id: *job_id,
                            tenant: tenant.clone(),
                            spec: spec.clone(),
                            submitted_at_ms: *submitted_at_ms,
                        });
                    }
                }
                JobRecord::Claimed { job_id, shard } => {
                    state.claims.insert(*job_id, *shard);
                }
                JobRecord::CancelRequested { job_id } => {
                    state.cancel_requested.insert(*job_id);
                }
                JobRecord::CrashCounted { job_id, count } => {
                    let entry = state.crash_counts.entry(*job_id).or_insert(0);
                    *entry = (*entry).max(*count);
                }
                JobRecord::Finished { job_id, outcome, rounds, latency_ms, result } => {
                    state.terminal.entry(*job_id).or_insert_with(|| TerminalJob {
                        outcome: *outcome,
                        rounds: *rounds,
                        latency_ms: *latency_ms,
                        result: result.clone(),
                    });
                }
            }
        }
        let submitted: BTreeSet<u64> = state.submitted.iter().map(|j| j.job_id).collect();
        let live = |id: &u64| submitted.contains(id) && !state.terminal.contains_key(id);
        state.cancel_requested.retain(live);
        state.crash_counts.retain(|id, _| live(id));
        state
    }

    /// Jobs submitted but not yet terminal, in submission order. A job
    /// with a standing cancel request is still pending: a worker must
    /// adopt it to checkpoint its partial result and write the terminal
    /// line.
    pub fn pending(&self) -> Vec<&SubmittedJob> {
        self.submitted
            .iter()
            .filter(|j| !self.terminal.contains_key(&j.job_id))
            .collect()
    }

    /// Number of live (non-terminal) jobs — the quantity admission
    /// control bounds.
    pub fn live(&self) -> usize {
        self.submitted.len() - self.terminal.len()
    }

    /// Number of live (non-terminal) jobs owned by `tenant` — the
    /// quantity the per-tenant quota bounds.
    pub fn tenant_live(&self, tenant: &str) -> usize {
        self.submitted
            .iter()
            .filter(|j| j.tenant == tenant && !self.terminal.contains_key(&j.job_id))
            .count()
    }

    /// The submitted job with this id, if any.
    pub fn job(&self, job_id: u64) -> Option<&SubmittedJob> {
        self.submitted.iter().find(|j| j.job_id == job_id)
    }

    /// The smallest id strictly greater than every submitted job's —
    /// what the frontend assigns to the next submission.
    pub fn next_job_id(&self) -> u64 {
        self.submitted.iter().map(|j| j.job_id + 1).max().unwrap_or(0)
    }

    /// The canonical minimal record sequence that replays to this state:
    /// per job, in submission order — its submit line, then (live jobs
    /// only) its cancel request and crash count if any, then its terminal
    /// line if any. Claims are omitted; they carry no recovery weight.
    /// This is what [`JobWal::compact`] writes.
    pub fn canonical_records(&self) -> Vec<JobRecord> {
        let mut out = Vec::new();
        for job in &self.submitted {
            out.push(JobRecord::Submitted {
                job_id: job.job_id,
                tenant: job.tenant.clone(),
                spec: job.spec.clone(),
                submitted_at_ms: job.submitted_at_ms,
            });
            if let Some(done) = self.terminal.get(&job.job_id) {
                out.push(JobRecord::Finished {
                    job_id: job.job_id,
                    outcome: done.outcome,
                    rounds: done.rounds,
                    latency_ms: done.latency_ms,
                    result: done.result.clone(),
                });
                continue;
            }
            if self.cancel_requested.contains(&job.job_id) {
                out.push(JobRecord::CancelRequested { job_id: job.job_id });
            }
            if let Some(&count) = self.crash_counts.get(&job.job_id) {
                if count > 0 {
                    out.push(JobRecord::CrashCounted { job_id: job.job_id, count });
                }
            }
        }
        out
    }

    /// Number of lines [`QueueState::canonical_records`] would write —
    /// the lower bound a size-triggered compaction compares the actual
    /// line count against.
    pub fn canonical_len(&self) -> usize {
        self.canonical_records().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_path(tag: &str) -> PathBuf {
        static COUNTER: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let n = COUNTER.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        std::env::temp_dir().join(format!(
            "felix-jobs-{tag}-{}-{n}.jsonl",
            std::process::id()
        ))
    }

    fn sample_records() -> Vec<JobRecord> {
        vec![
            JobRecord::Submitted {
                job_id: 0,
                tenant: "acme".to_string(),
                spec: Json::obj(vec![("model", Json::Str("dcgan".to_string()))]),
                submitted_at_ms: 1_700_000_000_123,
            },
            JobRecord::Submitted {
                job_id: 1,
                tenant: "globex".to_string(),
                spec: Json::obj(vec![("rounds", Json::Num(3.0))]),
                submitted_at_ms: 1_700_000_000_456,
            },
            JobRecord::Claimed { job_id: 0, shard: 1 },
            JobRecord::Finished {
                job_id: 0,
                outcome: JobOutcome::Done,
                rounds: 3,
                latency_ms: 0.1 + 0.2, // non-representable sum
                result: Json::obj(vec![("best", Json::f64_bits(1.25))]),
            },
        ]
    }

    /// One record of every lifecycle kind, exercising every terminal
    /// outcome plus the request/counter lines.
    fn lifecycle_records() -> Vec<JobRecord> {
        let mut records = sample_records();
        records.extend([
            JobRecord::Submitted {
                job_id: 2,
                tenant: "initech".to_string(),
                spec: Json::obj(vec![("deadline_ms", Json::Num(0.0))]),
                submitted_at_ms: 1_700_000_001_000,
            },
            JobRecord::Submitted {
                job_id: 3,
                tenant: "initech".to_string(),
                spec: Json::Null,
                submitted_at_ms: 1_700_000_002_000,
            },
            JobRecord::Submitted {
                job_id: 4,
                tenant: "hooli".to_string(),
                spec: Json::Null,
                submitted_at_ms: 1_700_000_003_000,
            },
            JobRecord::Submitted {
                job_id: 5,
                tenant: "hooli".to_string(),
                spec: Json::Null,
                submitted_at_ms: 1_700_000_004_000,
            },
            JobRecord::CancelRequested { job_id: 1 },
            JobRecord::Finished {
                job_id: 1,
                outcome: JobOutcome::Cancelled,
                rounds: 1,
                latency_ms: f64::INFINITY,
                result: Json::obj(vec![("state", Json::Str("cancelled".to_string()))]),
            },
            JobRecord::Finished {
                job_id: 2,
                outcome: JobOutcome::Expired,
                rounds: 0,
                latency_ms: f64::INFINITY,
                result: Json::obj(vec![("state", Json::Str("expired".to_string()))]),
            },
            JobRecord::CrashCounted { job_id: 3, count: 1 },
            JobRecord::CrashCounted { job_id: 3, count: 2 },
            JobRecord::CrashCounted { job_id: 4, count: 3 },
            JobRecord::Finished {
                job_id: 4,
                outcome: JobOutcome::Quarantined,
                rounds: 1,
                latency_ms: f64::INFINITY,
                result: Json::obj(vec![("error", Json::Str("quarantined".to_string()))]),
            },
            JobRecord::CancelRequested { job_id: 5 },
        ]);
        records
    }

    #[test]
    fn records_round_trip_bit_exactly() {
        let path = tmp_path("roundtrip");
        let mut wal = JobWal::open(&path).expect("open");
        for r in lifecycle_records() {
            wal.append(&r).expect("append");
        }
        let back = wal.read_records().expect("read");
        assert_eq!(back, lifecycle_records());
        let JobRecord::Finished { latency_ms, .. } = &back[3] else { panic!("done") };
        assert_eq!(latency_ms.to_bits(), (0.1f64 + 0.2).to_bits());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn replay_ignores_claims_and_orders_pending() {
        let state = QueueState::replay(&sample_records());
        assert_eq!(state.submitted.len(), 2);
        assert_eq!(state.claims.get(&0), Some(&1));
        assert!(state.terminal.contains_key(&0));
        let pending = state.pending();
        assert_eq!(pending.len(), 1, "claimed-but-incomplete stays pending");
        assert_eq!(pending[0].job_id, 1);
        assert_eq!(pending[0].tenant, "globex");
        assert_eq!(state.next_job_id(), 2);
        assert_eq!(state.live(), 1);
        assert_eq!(state.tenant_live("acme"), 0);
        assert_eq!(state.tenant_live("globex"), 1);
    }

    #[test]
    fn replay_folds_the_full_lifecycle() {
        let state = QueueState::replay(&lifecycle_records());
        assert_eq!(state.submitted.len(), 6);
        // Terminal states land with their outcomes; first line wins.
        assert_eq!(state.terminal[&0].outcome, JobOutcome::Done);
        assert_eq!(state.terminal[&1].outcome, JobOutcome::Cancelled);
        assert_eq!(state.terminal[&2].outcome, JobOutcome::Expired);
        assert_eq!(state.terminal[&4].outcome, JobOutcome::Quarantined);
        // Cancel/crash markers on terminal jobs are normalized away…
        assert!(!state.cancel_requested.contains(&1));
        assert!(!state.crash_counts.contains_key(&4));
        // …but stand on live jobs (counts merge by maximum).
        assert!(state.cancel_requested.contains(&5));
        assert_eq!(state.crash_counts.get(&3), Some(&2));
        // Pending = the two live jobs, in order; one is cancel-requested.
        let pending: Vec<u64> = state.pending().iter().map(|j| j.job_id).collect();
        assert_eq!(pending, vec![3, 5]);
        assert_eq!(state.live(), 2);
        assert_eq!(state.tenant_live("hooli"), 1);
    }

    #[test]
    fn replay_is_idempotent_under_duplicates() {
        let mut records = lifecycle_records();
        // A crash between result write and terminal-append re-finalizes:
        // the WAL can hold the same terminal (and claim, cancel, crash)
        // line twice.
        records.push(JobRecord::Claimed { job_id: 0, shard: 1 });
        records.push(records[3].clone());
        records.push(records[0].clone());
        records.push(JobRecord::CancelRequested { job_id: 5 });
        records.push(JobRecord::CrashCounted { job_id: 3, count: 1 });
        assert_eq!(
            QueueState::replay(&records),
            QueueState::replay(&lifecycle_records())
        );
    }

    #[test]
    fn torn_tail_and_foreign_lines_are_skipped() {
        let path = tmp_path("torn");
        let mut wal = JobWal::open(&path).expect("open");
        for r in sample_records() {
            wal.append(&r).expect("append");
        }
        drop(wal);
        let mut f = OpenOptions::new().append(true).open(&path).expect("open");
        // A foreign (non-job) line, a newer-version job line, then a torn
        // tail with no newline.
        writeln!(f, "{{\"kind\":\"health\",\"v\":1}}").expect("write");
        writeln!(
            f,
            "{{\"kind\":\"job-claim\",\"v\":{},\"job\":\"0000000000000002\",\"shard\":0}}",
            JOB_RECORD_VERSION + 1
        )
        .expect("write");
        write!(f, "{{\"kind\":\"job-submit\",\"v\":1,\"job\":\"00").expect("write");
        drop(f);
        assert_eq!(read_job_records(&path).expect("read"), sample_records());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn version_one_submit_lines_still_decode() {
        // A v1 line has no `at_ms`; it must decode with timestamp 0, not
        // be dropped — pre-upgrade WALs stay replayable.
        let doc = Json::parse(
            "{\"kind\":\"job-submit\",\"v\":1,\"job\":\"0000000000000007\",\
             \"tenant\":\"acme\",\"spec\":null}",
        )
        .expect("parse");
        assert_eq!(
            JobRecord::from_json(&doc),
            Some(JobRecord::Submitted {
                job_id: 7,
                tenant: "acme".to_string(),
                spec: Json::Null,
                submitted_at_ms: 0,
            })
        );
    }

    /// Satellite: the torn-tail rule holds for every new lifecycle line —
    /// truncating the WAL at every byte offset of the final line recovers
    /// exactly the intact prefix, whichever record kind the final line is.
    #[test]
    fn truncation_at_every_byte_offset_of_each_lifecycle_line_recovers_prefix() {
        let records = lifecycle_records();
        // Keep every record kind in final position at least once by
        // sweeping the last four lines (cancel, crash, quarantine-finish,
        // cancel-request) plus the expired/cancelled terminals.
        for keep in [8, 9, 10, 11, 12, 13, records.len()] {
            let prefix = &records[..keep];
            let path = tmp_path("lifecycle-torn");
            let mut wal = JobWal::open(&path).expect("open");
            for r in prefix {
                wal.append(&r.clone()).expect("append");
            }
            drop(wal);
            let full = std::fs::read(&path).expect("read bytes");
            let last_line_start = full[..full.len() - 1]
                .iter()
                .rposition(|&b| b == b'\n')
                .map_or(0, |p| p + 1);
            for cut in last_line_start..full.len() {
                std::fs::write(&path, &full[..cut]).expect("truncate");
                assert_eq!(
                    read_job_records(&path).expect("read truncated"),
                    prefix[..keep - 1],
                    "keep {keep}, cut at byte {cut}/{}",
                    full.len()
                );
            }
            std::fs::remove_file(&path).ok();
        }
    }

    #[test]
    fn compaction_preserves_recovery_state_and_drops_claims() {
        let path = tmp_path("compact");
        let mut wal = JobWal::open(&path).expect("open");
        let mut records = lifecycle_records();
        // Pile on redundancy: duplicate terminals, claims from three
        // restarts, superseded crash counts.
        records.push(JobRecord::Claimed { job_id: 3, shard: 0 });
        records.push(JobRecord::Claimed { job_id: 3, shard: 0 });
        records.push(JobRecord::Claimed { job_id: 5, shard: 0 });
        records.push(records[3].clone());
        records.push(JobRecord::CancelRequested { job_id: 5 });
        for r in &records {
            wal.append(r).expect("append");
        }
        let before = QueueState::replay(&wal.read_records().expect("read"));
        let lines = wal.compact(&before).expect("compact");
        assert!(!path.with_extension("tmp").exists(), "tmp renamed away");
        let on_disk = std::fs::read_to_string(&path).expect("read");
        assert_eq!(on_disk.lines().count(), lines);
        assert!(lines < records.len(), "compaction must shrink the log");
        assert_eq!(lines, before.canonical_len());
        // Replay of the compacted log equals the original recovery state,
        // claims aside (observability only, deliberately dropped).
        let mut reference = before.clone();
        reference.claims.clear();
        let after = QueueState::replay(&wal.read_records().expect("read"));
        assert_eq!(after, reference);
        // The append handle follows the compacted file.
        let mut wal = wal;
        wal.append(&JobRecord::CancelRequested { job_id: 3 }).expect("append");
        let state = QueueState::replay(&read_job_records(&path).expect("read"));
        assert!(state.cancel_requested.contains(&3));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn compaction_is_idempotent() {
        let path = tmp_path("compact-idem");
        let mut wal = JobWal::open(&path).expect("open");
        for r in lifecycle_records() {
            wal.append(&r).expect("append");
        }
        let state = QueueState::replay(&wal.read_records().expect("read"));
        wal.compact(&state).expect("compact");
        let once = std::fs::read(&path).expect("read");
        let state = QueueState::replay(&wal.read_records().expect("read"));
        wal.compact(&state).expect("compact again");
        assert_eq!(std::fs::read(&path).expect("read"), once, "second compact is a no-op");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_wal_reads_empty() {
        assert!(read_job_records(tmp_path("missing")).expect("read").is_empty());
        let state = QueueState::replay(&[]);
        assert!(state.pending().is_empty());
        assert_eq!(state.next_job_id(), 0);
        assert_eq!(state.live(), 0);
    }
}
