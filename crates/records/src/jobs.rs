//! Durable job-queue records for the tuning service.
//!
//! The serving tier (`felix-serve`) fronts the tuner with a write-ahead
//! log: every submitted job is appended here *before* the client sees an
//! acknowledgment, every completion is appended *after* the job's result
//! document is durably on disk. Because the WAL is the only authority on
//! queue membership, a worker killed at any instant recovers the exact
//! queue by replaying the log — claims are observability-only and carry no
//! recovery weight (a claimed-but-incomplete job is simply still pending).
//!
//! The wire format follows the crate's house rules: JSONL with one record
//! per line, flush-per-append durability, torn tails skipped on read, and
//! every fractional number encoded as a 16-hex-digit bit pattern so replay
//! is bit-exact.

use crate::Json;
use std::collections::BTreeMap;
use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Read, Write};
use std::path::{Path, PathBuf};

/// Version of the job-record wire format. Bumped whenever a field is
/// added, removed, or re-encoded; readers skip lines from a newer version
/// instead of guessing at their meaning.
pub const JOB_RECORD_VERSION: usize = 1;

/// One line of the job WAL.
///
/// The job spec and result travel as opaque [`Json`] documents: the WAL
/// layer guarantees durability and ordering, while the serving tier owns
/// the schema — so a spec-format change never forces a WAL-format bump.
#[derive(Clone, Debug, PartialEq)]
pub enum JobRecord {
    /// A job entered the queue. Appended (and flushed) before the client
    /// is acknowledged, so an acked job can never be lost.
    Submitted {
        /// Queue-wide job identity, assigned by the frontend.
        job_id: u64,
        /// Owning tenant (namespaces the schedule store and fairness).
        tenant: String,
        /// Opaque job spec, interpreted by the serving tier.
        spec: Json,
    },
    /// A worker shard picked the job up. Observability only: replay
    /// ignores claims, so a crash between claim and completion leaves the
    /// job pending, exactly as required.
    Claimed {
        /// The claimed job.
        job_id: u64,
        /// Claiming worker shard index.
        shard: usize,
    },
    /// The job finished and its result document is durable. Appended
    /// *after* the result write, so a completion line is proof the result
    /// can be served.
    Completed {
        /// The finished job.
        job_id: u64,
        /// Tuning rounds the job consumed.
        rounds: usize,
        /// Best end-to-end latency achieved (milliseconds; bit-exact on
        /// the wire).
        latency_ms: f64,
        /// Opaque result summary, interpreted by the serving tier.
        result: Json,
    },
}

impl JobRecord {
    /// The record's job id.
    pub fn job_id(&self) -> u64 {
        match *self {
            JobRecord::Submitted { job_id, .. }
            | JobRecord::Claimed { job_id, .. }
            | JobRecord::Completed { job_id, .. } => job_id,
        }
    }

    /// Serializes the record as a single JSON line (no newline).
    pub fn to_json(&self) -> Json {
        let (kind, mut fields) = match self {
            JobRecord::Submitted { job_id, tenant, spec } => (
                "job-submit",
                vec![
                    ("job", Json::u64_hex(*job_id)),
                    ("tenant", Json::Str(tenant.clone())),
                    ("spec", spec.clone()),
                ],
            ),
            JobRecord::Claimed { job_id, shard } => (
                "job-claim",
                vec![
                    ("job", Json::u64_hex(*job_id)),
                    ("shard", Json::Num(*shard as f64)),
                ],
            ),
            JobRecord::Completed { job_id, rounds, latency_ms, result } => (
                "job-done",
                vec![
                    ("job", Json::u64_hex(*job_id)),
                    ("rounds", Json::Num(*rounds as f64)),
                    ("latency_ms", Json::f64_bits(*latency_ms)),
                    ("result", result.clone()),
                ],
            ),
        };
        let mut all = vec![
            ("kind", Json::Str(kind.to_string())),
            ("v", Json::Num(JOB_RECORD_VERSION as f64)),
        ];
        all.append(&mut fields);
        Json::obj(all)
    }

    /// Decodes a job record parsed from one WAL line. Returns `None` for
    /// non-job lines and for lines written by a newer format version.
    pub fn from_json(doc: &Json) -> Option<JobRecord> {
        let kind = doc.get("kind")?.as_str()?;
        if !kind.starts_with("job-") {
            return None;
        }
        if doc.get("v")?.as_usize()? > JOB_RECORD_VERSION {
            return None;
        }
        let job_id = doc.get("job")?.as_u64_hex()?;
        match kind {
            "job-submit" => Some(JobRecord::Submitted {
                job_id,
                tenant: doc.get("tenant")?.as_str()?.to_string(),
                spec: doc.get("spec")?.clone(),
            }),
            "job-claim" => Some(JobRecord::Claimed {
                job_id,
                shard: doc.get("shard")?.as_usize()?,
            }),
            "job-done" => Some(JobRecord::Completed {
                job_id,
                rounds: doc.get("rounds")?.as_usize()?,
                latency_ms: doc.get("latency_ms")?.as_f64_bits()?,
                result: doc.get("result")?.clone(),
            }),
            _ => None,
        }
    }
}

/// The append side of the job WAL: flush-per-append, so once `append`
/// returns the record survives any crash of this process.
#[derive(Debug)]
pub struct JobWal {
    path: PathBuf,
    writer: BufWriter<File>,
}

impl JobWal {
    /// Opens (creating if needed) the WAL at `path` for appending.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from opening the file.
    pub fn open(path: impl AsRef<Path>) -> std::io::Result<JobWal> {
        let path = path.as_ref().to_path_buf();
        let file = OpenOptions::new().create(true).append(true).open(&path)?;
        Ok(JobWal { path, writer: BufWriter::new(file) })
    }

    /// The WAL's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Appends one record and flushes it to the OS.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from writing.
    pub fn append(&mut self, record: &JobRecord) -> std::io::Result<()> {
        let mut line = record.to_json().write();
        line.push('\n');
        self.writer.write_all(line.as_bytes())?;
        self.writer.flush()
    }

    /// Reads every intact record currently in the WAL (see
    /// [`read_job_records`]).
    ///
    /// # Errors
    ///
    /// Returns any I/O error from reading the file.
    pub fn read_records(&self) -> std::io::Result<Vec<JobRecord>> {
        read_job_records(&self.path)
    }
}

/// Reads the intact job records of a WAL at `path`, in append order. A
/// missing file reads as an empty log; torn, corrupt, non-job, or
/// newer-version lines are skipped with the same rules as
/// [`crate::read_all_records`].
///
/// # Errors
///
/// Returns I/O errors other than the file not existing.
pub fn read_job_records(path: impl AsRef<Path>) -> std::io::Result<Vec<JobRecord>> {
    let mut bytes = Vec::new();
    match File::open(path.as_ref()) {
        Ok(mut f) => {
            f.read_to_end(&mut bytes)?;
        }
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(e),
    }
    let mut out = Vec::new();
    // Only newline-terminated lines count: a line missing its terminator is
    // by definition the torn tail of an interrupted append.
    for line in bytes.split_inclusive(|&b| b == b'\n') {
        let Some(line) = line.strip_suffix(b"\n") else { break };
        let Ok(text) = std::str::from_utf8(line) else { continue };
        if text.trim().is_empty() {
            continue;
        }
        let Ok(doc) = Json::parse(text) else { continue };
        if let Some(rec) = JobRecord::from_json(&doc) {
            out.push(rec);
        }
    }
    Ok(out)
}

/// A job still in the queue (submitted, not yet completed).
#[derive(Clone, Debug, PartialEq)]
pub struct SubmittedJob {
    /// Queue-wide job identity.
    pub job_id: u64,
    /// Owning tenant.
    pub tenant: String,
    /// Opaque job spec as submitted.
    pub spec: Json,
}

/// A finished job, as proven by its `job-done` WAL line.
#[derive(Clone, Debug, PartialEq)]
pub struct CompletedJob {
    /// Tuning rounds the job consumed.
    pub rounds: usize,
    /// Best end-to-end latency achieved (milliseconds).
    pub latency_ms: f64,
    /// Opaque result summary.
    pub result: Json,
}

/// The queue state a WAL replays to. Deterministic: the same record
/// sequence always yields the same state, and claims never affect it.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct QueueState {
    /// Every submitted job, in WAL (= acknowledgment) order, including
    /// completed ones. Duplicate submit lines for one id keep the first.
    pub submitted: Vec<SubmittedJob>,
    /// Last observed claim per job (observability only).
    pub claims: BTreeMap<u64, usize>,
    /// Finished jobs by id. Duplicate done lines for one id keep the
    /// first (re-finalization after a crash re-appends identically).
    pub completed: BTreeMap<u64, CompletedJob>,
}

impl QueueState {
    /// Replays a record sequence (as read by [`read_job_records`]) into
    /// the queue state.
    pub fn replay(records: &[JobRecord]) -> QueueState {
        let mut state = QueueState::default();
        for rec in records {
            match rec {
                JobRecord::Submitted { job_id, tenant, spec } => {
                    if !state.submitted.iter().any(|j| j.job_id == *job_id) {
                        state.submitted.push(SubmittedJob {
                            job_id: *job_id,
                            tenant: tenant.clone(),
                            spec: spec.clone(),
                        });
                    }
                }
                JobRecord::Claimed { job_id, shard } => {
                    state.claims.insert(*job_id, *shard);
                }
                JobRecord::Completed { job_id, rounds, latency_ms, result } => {
                    state.completed.entry(*job_id).or_insert_with(|| CompletedJob {
                        rounds: *rounds,
                        latency_ms: *latency_ms,
                        result: result.clone(),
                    });
                }
            }
        }
        state
    }

    /// Jobs submitted but not yet completed, in submission order.
    pub fn pending(&self) -> Vec<&SubmittedJob> {
        self.submitted
            .iter()
            .filter(|j| !self.completed.contains_key(&j.job_id))
            .collect()
    }

    /// The submitted job with this id, if any.
    pub fn job(&self, job_id: u64) -> Option<&SubmittedJob> {
        self.submitted.iter().find(|j| j.job_id == job_id)
    }

    /// The smallest id strictly greater than every submitted job's —
    /// what the frontend assigns to the next submission.
    pub fn next_job_id(&self) -> u64 {
        self.submitted.iter().map(|j| j.job_id + 1).max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_path(tag: &str) -> PathBuf {
        static COUNTER: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let n = COUNTER.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        std::env::temp_dir().join(format!(
            "felix-jobs-{tag}-{}-{n}.jsonl",
            std::process::id()
        ))
    }

    fn sample_records() -> Vec<JobRecord> {
        vec![
            JobRecord::Submitted {
                job_id: 0,
                tenant: "acme".to_string(),
                spec: Json::obj(vec![("model", Json::Str("dcgan".to_string()))]),
            },
            JobRecord::Submitted {
                job_id: 1,
                tenant: "globex".to_string(),
                spec: Json::obj(vec![("rounds", Json::Num(3.0))]),
            },
            JobRecord::Claimed { job_id: 0, shard: 1 },
            JobRecord::Completed {
                job_id: 0,
                rounds: 3,
                latency_ms: 0.1 + 0.2, // non-representable sum
                result: Json::obj(vec![("best", Json::f64_bits(1.25))]),
            },
        ]
    }

    #[test]
    fn records_round_trip_bit_exactly() {
        let path = tmp_path("roundtrip");
        let mut wal = JobWal::open(&path).expect("open");
        for r in sample_records() {
            wal.append(&r).expect("append");
        }
        let back = wal.read_records().expect("read");
        assert_eq!(back, sample_records());
        let JobRecord::Completed { latency_ms, .. } = &back[3] else { panic!("done") };
        assert_eq!(latency_ms.to_bits(), (0.1f64 + 0.2).to_bits());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn replay_ignores_claims_and_orders_pending() {
        let state = QueueState::replay(&sample_records());
        assert_eq!(state.submitted.len(), 2);
        assert_eq!(state.claims.get(&0), Some(&1));
        assert!(state.completed.contains_key(&0));
        let pending = state.pending();
        assert_eq!(pending.len(), 1, "claimed-but-incomplete stays pending");
        assert_eq!(pending[0].job_id, 1);
        assert_eq!(pending[0].tenant, "globex");
        assert_eq!(state.next_job_id(), 2);
    }

    #[test]
    fn replay_is_idempotent_under_duplicates() {
        let mut records = sample_records();
        // A crash between result write and done-append re-finalizes: the
        // WAL can hold the same done (and claim) line twice.
        records.push(JobRecord::Claimed { job_id: 0, shard: 1 });
        records.push(records[3].clone());
        records.push(records[0].clone());
        assert_eq!(QueueState::replay(&records), QueueState::replay(&sample_records()));
    }

    #[test]
    fn torn_tail_and_foreign_lines_are_skipped() {
        let path = tmp_path("torn");
        let mut wal = JobWal::open(&path).expect("open");
        for r in sample_records() {
            wal.append(&r).expect("append");
        }
        drop(wal);
        let mut f = OpenOptions::new().append(true).open(&path).expect("open");
        // A foreign (non-job) line, a newer-version job line, then a torn
        // tail with no newline.
        writeln!(f, "{{\"kind\":\"health\",\"v\":1}}").expect("write");
        writeln!(
            f,
            "{{\"kind\":\"job-claim\",\"v\":{},\"job\":\"0000000000000002\",\"shard\":0}}",
            JOB_RECORD_VERSION + 1
        )
        .expect("write");
        write!(f, "{{\"kind\":\"job-submit\",\"v\":1,\"job\":\"00").expect("write");
        drop(f);
        assert_eq!(read_job_records(&path).expect("read"), sample_records());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_wal_reads_empty() {
        assert!(read_job_records(tmp_path("missing")).expect("read").is_empty());
        let state = QueueState::replay(&[]);
        assert!(state.pending().is_empty());
        assert_eq!(state.next_job_id(), 0);
    }
}
