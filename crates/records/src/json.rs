//! A minimal, dependency-free JSON value with exact `f64` round-tripping.
//!
//! The workspace builds with no network access, so the record store cannot
//! pull in `serde_json`; this module implements exactly the JSON subset the
//! persistence layer needs. Numbers are written with Rust's shortest
//! round-trip float formatting, so `parse(write(x))` returns bit-identical
//! values for every finite `f64` — the property the byte-identical
//! checkpoint/resume guarantee rests on. Non-finite numbers are rejected at
//! write time; state that can legitimately hold NaN/∞ (e.g. an unmeasured
//! incumbent) is stored as a bit-pattern string via [`Json::f64_bits`].

use std::fmt::Write as _;

/// A JSON document node.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A finite number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object. Key order is preserved (and therefore deterministic).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// An object node from key/value pairs.
    pub fn obj(fields: Vec<(&str, Json)>) -> Json {
        Json::Obj(fields.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Encodes any `f64` (including NaN/∞/-0.0) as its exact bit pattern.
    /// Use for state fields where bit-identity matters more than
    /// readability; decode with [`Json::as_f64_bits`].
    pub fn f64_bits(v: f64) -> Json {
        Json::Str(format!("{:016x}", v.to_bits()))
    }

    /// Encodes a `u64` as a hex string (JSON numbers are doubles and cannot
    /// carry 64 bits exactly).
    pub fn u64_hex(v: u64) -> Json {
        Json::Str(format!("{v:016x}"))
    }

    /// Looks up a field of an object node.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The node as a finite number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The node as a bit-pattern-encoded `f64` (see [`Json::f64_bits`]).
    pub fn as_f64_bits(&self) -> Option<f64> {
        match self {
            Json::Str(s) if s.len() == 16 => {
                u64::from_str_radix(s, 16).ok().map(f64::from_bits)
            }
            _ => None,
        }
    }

    /// The node as a hex-encoded `u64` (see [`Json::u64_hex`]).
    pub fn as_u64_hex(&self) -> Option<u64> {
        match self {
            Json::Str(s) => u64::from_str_radix(s, 16).ok(),
            _ => None,
        }
    }

    /// The node as a non-negative integer.
    pub fn as_usize(&self) -> Option<usize> {
        match self {
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            Json::Num(v) if *v >= 0.0 && v.fract() == 0.0 => Some(*v as usize),
            _ => None,
        }
    }

    /// The node as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The node as a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The node as an array slice.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Serializes the document on one line (no trailing newline).
    ///
    /// # Panics
    ///
    /// Panics on non-finite [`Json::Num`] values — encode those with
    /// [`Json::f64_bits`] instead.
    pub fn write(&self) -> String {
        let mut out = String::new();
        self.write_into(&mut out);
        out
    }

    fn write_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(v) => {
                assert!(v.is_finite(), "JSON numbers must be finite, got {v}");
                // Rust's float Display is the shortest decimal that parses
                // back to the same bits, so this round-trips exactly.
                let _ = write!(out, "{v}");
            }
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_into(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write_into(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses a complete JSON document, rejecting trailing garbage.
    ///
    /// # Errors
    ///
    /// Returns a position-annotated message on malformed input.
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing garbage at byte {pos}"));
        }
        Ok(value)
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, b: u8) -> Result<(), String> {
    if bytes.get(*pos) == Some(&b) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {pos}", b as char))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'n') => parse_lit(bytes, pos, "null", Json::Null),
        Some(b't') => parse_lit(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, "false", Json::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Json::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {pos}")),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                expect(bytes, pos, b':')?;
                let value = parse_value(bytes, pos)?;
                fields.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(fields));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
                }
            }
        }
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {pos}"))
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape")?;
                        let hex = std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?;
                        let code =
                            u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {pos}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (the input is a &str, so
                // boundaries are valid).
                let rest = &bytes[*pos..];
                let s = unsafe { std::str::from_utf8_unchecked(rest) };
                let c = s.chars().next().ok_or("unterminated string")?;
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|_| "bad number")?;
    let v: f64 = text
        .parse()
        .map_err(|_| format!("invalid number '{text}' at byte {start}"))?;
    if !v.is_finite() {
        return Err(format!("non-finite number '{text}' at byte {start}"));
    }
    Ok(Json::Num(v))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_structures() {
        let doc = Json::obj(vec![
            ("name", Json::Str("dense[256, 512]".into())),
            ("ok", Json::Bool(true)),
            ("none", Json::Null),
            ("vals", Json::Arr(vec![Json::Num(1.0), Json::Num(-2.5)])),
            (
                "nested",
                Json::obj(vec![("k", Json::Num(3.0)), ("s", Json::Str("a\"b\\c\n".into()))]),
            ),
        ]);
        let text = doc.write();
        assert_eq!(Json::parse(&text).expect("parse"), doc);
    }

    #[test]
    fn floats_round_trip_bit_exactly() {
        let awkward = [
            0.1,
            1.0 / 3.0,
            f64::MIN_POSITIVE,
            2.225_073_858_507_201e-308, // subnormal neighborhood
            1.797_693_134_862_315_7e308,
            -0.0,
            123_456_789.123_456_78,
            std::f64::consts::PI,
        ];
        for &v in &awkward {
            let text = Json::Num(v).write();
            let back = Json::parse(&text).expect("parse").as_f64().expect("num");
            assert_eq!(back.to_bits(), v.to_bits(), "{v} -> {text}");
        }
    }

    #[test]
    fn bit_pattern_encoding_handles_non_finite() {
        for v in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY, -0.0, 1.5] {
            let node = Json::f64_bits(v);
            let text = node.write();
            let back = Json::parse(&text)
                .expect("parse")
                .as_f64_bits()
                .expect("bits");
            assert_eq!(back.to_bits(), v.to_bits());
        }
    }

    #[test]
    fn u64_hex_round_trips() {
        for v in [0u64, 1, u64::MAX, 0xDEAD_BEEF_CAFE_F00D] {
            let node = Json::u64_hex(v);
            assert_eq!(Json::parse(&node.write()).unwrap().as_u64_hex(), Some(v));
        }
    }

    #[test]
    fn rejects_garbage() {
        assert!(Json::parse("{\"a\":").is_err());
        assert!(Json::parse("[1,2").is_err());
        assert!(Json::parse("{\"a\":1} trailing").is_err());
        assert!(Json::parse("nul").is_err());
        assert!(Json::parse("\"unterminated").is_err());
        assert!(Json::parse("1e999").is_err(), "overflow to inf rejected");
    }

    #[test]
    fn accessors_are_type_safe() {
        let doc = Json::parse("{\"n\":4,\"s\":\"x\",\"b\":false}").unwrap();
        assert_eq!(doc.get("n").and_then(Json::as_usize), Some(4));
        assert_eq!(doc.get("s").and_then(Json::as_str), Some("x"));
        assert_eq!(doc.get("b").and_then(Json::as_bool), Some(false));
        assert_eq!(doc.get("missing"), None);
        assert_eq!(doc.get("n").and_then(Json::as_str), None);
    }
}
