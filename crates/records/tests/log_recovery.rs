//! Crash-recovery property test: truncating the log at **every** byte
//! offset of the final line must recover exactly the intact prefix, with
//! no error — the reader's contract is that an interrupted append never
//! costs more than the record being written.

use felix_records::{read_records, task_key, RecordLog, RecordOutcome, TuningRecord};
use std::path::PathBuf;

fn tmp_path(tag: &str) -> PathBuf {
    static COUNTER: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    std::env::temp_dir().join(format!(
        "felix-records-prop-{tag}-{}-{n}.jsonl",
        std::process::id()
    ))
}

/// Deterministic but varied record stream: mixed outcomes, retries, value
/// lengths, and awkward floats (negative zero, subnormals, long fractions).
fn make_record(i: usize) -> TuningRecord {
    let outcome = match i % 4 {
        0 => RecordOutcome::Fault("timeout".to_string()),
        1 => RecordOutcome::Fault("device-error".to_string()),
        _ => RecordOutcome::Ok(0.1 + (i as f64) / 3.0),
    };
    TuningRecord {
        task_key: task_key(&format!("matmul[{}]", 64 << (i % 3)), "sim-gpu"),
        task_name: format!("matmul[{}, 128]", 64 << (i % 3)),
        sketch: i % 3,
        sketch_name: if i.is_multiple_of(2) { "tile-3" } else { "tile-2" }.to_string(),
        values: (0..(1 + i % 4))
            .map(|j| match (i + j) % 3 {
                0 => -0.0,
                1 => f64::MIN_POSITIVE / 2.0,
                _ => (i * 7 + j) as f64 / 9.0,
            })
            .collect(),
        outcome,
        retries: i % 3,
        time_s: i as f64 * 1.5 + 0.333_333_333_333_333_3,
    }
}

#[test]
fn truncation_at_every_offset_of_final_line_recovers_prefix() {
    const N: usize = 8;
    let path = tmp_path("every-offset");
    let records: Vec<TuningRecord> = (0..N).map(make_record).collect();
    {
        let mut log = RecordLog::open(&path).expect("open log");
        for r in &records {
            log.append(r).expect("append");
        }
    }
    let full = std::fs::read(&path).expect("read log bytes");
    assert_eq!(*full.last().expect("non-empty log"), b'\n');

    // Byte offset where the final record's line starts.
    let last_line_start = full[..full.len() - 1]
        .iter()
        .rposition(|&b| b == b'\n')
        .map_or(0, |p| p + 1);

    // Truncate at every offset within the final line, from "line entirely
    // missing" through "line complete except the newline". In all of these
    // the reader must return exactly the first N-1 records.
    for cut in last_line_start..full.len() {
        std::fs::write(&path, &full[..cut]).expect("truncate");
        let recovered = read_records(&path)
            .unwrap_or_else(|e| panic!("reader errored at cut {cut}: {e}"));
        assert_eq!(
            recovered,
            records[..N - 1],
            "wrong recovery at cut {cut} (line starts at {last_line_start}, full {})",
            full.len()
        );
    }

    // And with the full file intact, all N come back.
    std::fs::write(&path, &full).expect("restore");
    assert_eq!(read_records(&path).expect("read"), records);
    std::fs::remove_file(&path).ok();
}

#[test]
fn truncation_within_earlier_lines_still_recovers_each_intact_prefix() {
    // Stronger than the satellite asks: cut at *every* byte of the whole
    // file and check the reader returns precisely the records whose lines
    // survived complete.
    const N: usize = 5;
    let path = tmp_path("all-offsets");
    let records: Vec<TuningRecord> = (0..N).map(make_record).collect();
    let mut line_ends = Vec::new();
    {
        let mut log = RecordLog::open(&path).expect("open log");
        for r in &records {
            log.append(r).expect("append");
            line_ends.push(std::fs::metadata(&path).expect("meta").len() as usize);
        }
    }
    let full = std::fs::read(&path).expect("read log bytes");

    for cut in 0..=full.len() {
        std::fs::write(&path, &full[..cut]).expect("truncate");
        let intact = line_ends.iter().take_while(|&&end| end <= cut).count();
        let recovered = read_records(&path)
            .unwrap_or_else(|e| panic!("reader errored at cut {cut}: {e}"));
        assert_eq!(recovered, records[..intact], "wrong recovery at cut {cut}");
    }
    std::fs::remove_file(&path).ok();
}
