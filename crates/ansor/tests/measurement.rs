//! Integration tests for the measurement pipeline: stub-proposer round
//! mechanics, fault injection with retry/backoff, quarantine, replay-buffer
//! hygiene, and evolution-baseline determinism.

use felix_ansor::{
    evolution::EvolutionConfig, select_next_task, tune_task_round, EvolutionaryProposer,
    MeasurePolicy, Proposer, RandomProposer, RoundReport, SearchTask, TuneOptions,
};
use felix_cost::{random_schedule, Mlp};
use felix_graph::{Op, Subgraph, Task};
use felix_sim::clock::ClockCosts;
use felix_sim::{DeviceConfig, FaultKind, FaultPlan, Simulator, TuningClock};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn dense_task() -> Task {
    Task {
        subgraph: Subgraph { ops: vec![Op::Dense { m: 256, k: 512, n: 512 }] },
        weight: 1,
    }
}

fn setup() -> (SearchTask, Mlp, Simulator) {
    let sim = Simulator::new(DeviceConfig::a5000());
    let task = SearchTask::from_task(&dense_task(), &sim);
    // Measurement-pipeline tests don't need a trained model: the simulator
    // labels candidates, the model only ranks proposals.
    let mut rng = StdRng::seed_from_u64(0);
    (task, Mlp::new(&mut rng), sim)
}

/// A proposer that replays a pre-built list of candidates, one batch per
/// round, and records what the tuner told it about the measurements.
struct StubProposer {
    batches: Vec<Vec<(usize, Vec<f64>)>>,
    next: usize,
    reports: Vec<RoundReport>,
}

impl StubProposer {
    fn new(batches: Vec<Vec<(usize, Vec<f64>)>>) -> Self {
        StubProposer { batches, next: 0, reports: Vec::new() }
    }
}

impl Proposer for StubProposer {
    fn name(&self) -> &'static str {
        "stub"
    }

    fn propose(
        &mut self,
        _task: &SearchTask,
        _model: &Mlp,
        _n: usize,
        _clock: &mut TuningClock,
        _costs: &ClockCosts,
        _rng: &mut StdRng,
    ) -> Vec<(usize, Vec<f64>)> {
        let batch = self.batches.get(self.next).cloned().unwrap_or_default();
        self.next += 1;
        batch
    }

    fn note_measurement(&mut self, report: &RoundReport) {
        self.reports.push(report.clone());
    }
}

/// Distinct valid schedules for sketch 0 of `task`.
fn valid_candidates(task: &SearchTask, n: usize, seed: u64) -> Vec<(usize, Vec<f64>)> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out: Vec<(usize, Vec<f64>)> = Vec::new();
    while out.len() < n {
        let vals = random_schedule(&task.sketches[0].program, &mut rng, 64);
        if !out.iter().any(|(_, v)| *v == vals) {
            out.push((0, vals));
        }
    }
    out
}

#[test]
fn stub_round_measures_everything_and_reports_back() {
    let (mut task, mut model, sim) = setup();
    let cands = valid_candidates(&task, 5, 42);
    let mut stub = StubProposer::new(vec![cands.clone()]);
    let mut clock = TuningClock::new();
    let costs = ClockCosts::default();
    let opts = TuneOptions { measurements_per_round: 5, update_model: false, ..Default::default() };
    let mut rng = StdRng::seed_from_u64(1);
    let report =
        tune_task_round(&mut task, &mut stub, &mut model, &sim, &mut clock, &costs, &opts, &mut rng);
    assert_eq!(report.measured, 5, "all stub candidates are valid and unique");
    assert_eq!(report.failed, 0);
    assert_eq!(report.retries, 0);
    assert_eq!(task.measured.len(), 5);
    assert_eq!(task.rounds, 1);
    assert!(task.best_latency_ms.is_finite());
    assert_eq!(stub.reports, vec![report], "tuner reports the round to the proposer");
    // A second round with the same candidates measures nothing (dedup).
    let mut stub2 = StubProposer::new(vec![cands]);
    let report2 = tune_task_round(
        &mut task, &mut stub2, &mut model, &sim, &mut clock, &costs, &opts, &mut rng,
    );
    assert_eq!(report2.measured, 0, "already-measured candidates are skipped");
}

#[test]
fn zero_rate_plan_is_bit_identical_to_no_plan() {
    // The tentpole guarantee at task level: a fault plan whose rates are all
    // zero leaves the RNG stream, the clock, and every measured value
    // byte-identical to the default (fault-free) options.
    let (_, mut model, sim) = setup();
    let costs = ClockCosts::default();
    let mut runs = Vec::new();
    for plan in [FaultPlan::none(), FaultPlan::chaos(0xDEAD_BEEF, 0.0)] {
        assert!(plan.is_zero());
        let mut task = SearchTask::from_task(&dense_task(), &sim);
        let mut prop = RandomProposer;
        let mut clock = TuningClock::new();
        let opts = TuneOptions {
            measurements_per_round: 6,
            update_model: false,
            fault_plan: plan,
            ..Default::default()
        };
        let mut rng = StdRng::seed_from_u64(7);
        let mut reports = Vec::new();
        for _ in 0..3 {
            reports.push(tune_task_round(
                &mut task, &mut prop, &mut model, &sim, &mut clock, &costs, &opts, &mut rng,
            ));
        }
        runs.push((task.measured.clone(), clock.now_s().to_bits(), reports));
    }
    let (m0, c0, r0) = &runs[0];
    let (m1, c1, r1) = &runs[1];
    assert_eq!(m0.len(), m1.len());
    for (a, b) in m0.iter().zip(m1) {
        assert_eq!(a.0, b.0);
        assert_eq!(a.1, b.1);
        assert_eq!(a.2.to_bits(), b.2.to_bits(), "latency must be bit-identical");
    }
    assert_eq!(c0, c1, "clock must be bit-identical");
    assert_eq!(r0, r1);
}

#[test]
fn chaos_rounds_respect_retry_budget_and_replay_hygiene() {
    let (mut task, mut model, sim) = setup();
    let costs = ClockCosts::default();
    let plan = FaultPlan::chaos(0xC0FFEE, 0.3);
    let policy = MeasurePolicy::default();
    let opts = TuneOptions {
        measurements_per_round: 8,
        update_model: true,
        fine_tune_epochs: 1,
        fault_plan: plan,
        measure_policy: policy,
        ..Default::default()
    };
    let mut prop = RandomProposer;
    let mut clock = TuningClock::new();
    let mut rng = StdRng::seed_from_u64(11);
    let mut total = RoundReport::default();
    for _ in 0..4 {
        let r = tune_task_round(
            &mut task, &mut prop, &mut model, &sim, &mut clock, &costs, &opts, &mut rng,
        );
        // Per round: every retry is charged to a candidate that was
        // attempted, and no candidate retries more than the bound.
        assert!(r.retries <= (r.measured + r.failed) * policy.max_retries);
        total.measured += r.measured;
        total.failed += r.failed;
        total.retries += r.retries;
    }
    assert!(total.failed > 0, "30% chaos must fail something in 32 candidates");
    assert!(total.measured > 0, "tuning still converges under chaos");
    assert!(task.best_latency_ms.is_finite());
    // Replay-buffer hygiene: one sample per successful measurement, none
    // for failures; failed candidates still count as measured for dedup.
    assert_eq!(task.samples.len(), task.measured.len());
    assert_eq!(task.failed.len(), total.failed);
    assert_eq!(task.fault_stats.failures(), total.failed);
    assert_eq!(task.fault_stats.retries, total.retries);
    for (sk, vals, _) in &task.failed {
        assert!(task.already_measured(*sk, vals), "failures join the dedup set");
    }
}

#[test]
fn build_errors_fail_fast_without_retry() {
    let (mut task, mut model, sim) = setup();
    let costs = ClockCosts::default();
    let plan = FaultPlan {
        seed: 5,
        build_error_rate: 1.0,
        ..FaultPlan::none()
    };
    let opts = TuneOptions {
        measurements_per_round: 6,
        update_model: false,
        fault_plan: plan,
        ..Default::default()
    };
    let mut stub = StubProposer::new(vec![valid_candidates(&task, 6, 3)]);
    let mut clock = TuningClock::new();
    let mut rng = StdRng::seed_from_u64(2);
    let report = tune_task_round(
        &mut task, &mut stub, &mut model, &sim, &mut clock, &costs, &opts, &mut rng,
    );
    assert_eq!(report.measured, 0);
    assert_eq!(report.failed, 6);
    assert_eq!(report.retries, 0, "build errors are deterministic: never retried");
    assert_eq!(task.fault_stats.build_errors, 6);
    assert!(task.samples.is_empty());
    assert!(task.best_latency_ms.is_infinite());
    // Each failure still burns compile time on the clock.
    assert!(clock.now_s() >= 6.0 * costs.compile_s);
}

#[test]
fn quarantine_trips_after_streak_and_lifts_on_success() {
    let (mut task, _, _) = setup();
    let n_sketches = task.sketches.len();
    assert!(n_sketches >= 2);
    assert_eq!(task.active_sketches(), (0..n_sketches).collect::<Vec<_>>());
    for i in 0..SearchTask::QUARANTINE_STREAK {
        assert!(!task.is_quarantined(0), "not quarantined before the streak ({i})");
        task.record_failure(0, vec![i as f64], FaultKind::DeviceError);
    }
    assert!(task.is_quarantined(0));
    assert!(!task.active_sketches().contains(&0));
    // A success on the sketch proves it works again: quarantine lifts.
    task.record(0, vec![99.0], 1.5);
    assert!(!task.is_quarantined(0));
    assert_eq!(task.active_sketches(), (0..n_sketches).collect::<Vec<_>>());
}

#[test]
fn all_quarantined_falls_back_to_every_sketch() {
    let (mut task, _, _) = setup();
    let n_sketches = task.sketches.len();
    for sk in 0..n_sketches {
        for i in 0..SearchTask::QUARANTINE_STREAK {
            task.record_failure(sk, vec![sk as f64, i as f64], FaultKind::Timeout);
        }
    }
    assert!((0..n_sketches).all(|sk| task.is_quarantined(sk)));
    assert_eq!(
        task.active_sketches(),
        (0..n_sketches).collect::<Vec<_>>(),
        "a fully-quarantined task still probes for recovery"
    );
}

#[test]
fn scheduler_deprioritizes_fault_burning_tasks() {
    let sim = Simulator::new(DeviceConfig::a5000());
    let mut tasks =
        vec![SearchTask::from_task(&dense_task(), &sim), SearchTask::from_task(&dense_task(), &sim)];
    for t in &mut tasks {
        t.rounds = 1;
        t.best_latency_ms = 10.0;
        t.record(0, vec![1.0], 10.0);
    }
    // Equal otherwise; task 0 wastes attempts on faults.
    assert_eq!(select_next_task(&tasks), 0, "tie breaks to the first task");
    for i in 0..4 {
        tasks[0].record_failure(0, vec![2.0 + i as f64], FaultKind::DeviceError);
    }
    assert_eq!(
        select_next_task(&tasks),
        1,
        "the fault-burning task loses its scheduling priority"
    );
}

#[test]
fn evolution_baseline_is_deterministic() {
    let sim = Simulator::new(DeviceConfig::a5000());
    let mut model_rng = StdRng::seed_from_u64(0);
    let model = Mlp::new(&mut model_rng);
    let costs = ClockCosts::default();
    let cfg = EvolutionConfig { population: 48, generations: 2, ..Default::default() };
    let mut runs = Vec::new();
    for _ in 0..2 {
        let task = SearchTask::from_task(&dense_task(), &sim);
        let mut prop = EvolutionaryProposer::new(cfg);
        let mut clock = TuningClock::new();
        let mut rng = StdRng::seed_from_u64(9);
        let cands = prop.propose(&task, &model, 8, &mut clock, &costs, &mut rng);
        runs.push((cands, clock.now_s().to_bits()));
    }
    assert_eq!(runs[0], runs[1], "same seed, same candidates, same clock");
}

#[test]
fn incumbent_and_dedup_invariants_hold() {
    let (mut task, _, _) = setup();
    task.record(0, vec![1.0, 2.0], 5.0);
    assert_eq!(task.best_latency_ms, 5.0);
    task.record(0, vec![1.0, 3.0], 8.0);
    assert_eq!(task.best_latency_ms, 5.0, "worse measurement keeps the incumbent");
    task.record(1, vec![1.0, 4.0], 2.0);
    assert_eq!(task.best_latency_ms, 2.0);
    assert_eq!(task.best_schedule, Some((1, vec![1.0, 4.0])));
    assert!(task.already_measured(0, &[1.0, 2.0]));
    assert!(!task.already_measured(1, &[1.0, 2.0]), "dedup is per sketch");
    // Failures dedup too, but never move the incumbent.
    task.record_failure(0, vec![9.0], FaultKind::BuildError);
    assert!(task.already_measured(0, &[9.0]));
    assert_eq!(task.best_latency_ms, 2.0);
    assert_eq!(task.measured.len(), 3);
}
