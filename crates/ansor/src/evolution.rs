//! Ansor's evolutionary search (population 2048, 4 generations by default,
//! §5), guided by the learned cost model.

use crate::{Proposer, SearchTask};
use felix_cost::{
    crossover_schedules, log_transform_into, mutate_schedule, random_schedule,
    total_cmp_desc_nan_last, total_cmp_nan_last, Mlp,
};
use felix_sim::clock::ClockCosts;
use felix_sim::TuningClock;
use rand::rngs::StdRng;
use rand::Rng;

/// Configuration of the evolutionary search.
#[derive(Clone, Copy, Debug)]
pub struct EvolutionConfig {
    /// Population size (paper: 2048).
    pub population: usize,
    /// Generations per round (paper: 4).
    pub generations: usize,
    /// Fraction of the next generation produced by mutation (vs crossover).
    pub mutation_rate: f64,
    /// Fraction of the initial population seeded from previously measured
    /// good schedules.
    pub elite_seed_frac: f64,
}

impl Default for EvolutionConfig {
    fn default() -> Self {
        EvolutionConfig {
            population: 2048,
            generations: 4,
            mutation_rate: 0.85,
            elite_seed_frac: 0.25,
        }
    }
}

/// The evolutionary candidate proposer.
#[derive(Clone, Debug)]
pub struct EvolutionaryProposer {
    /// Hyperparameters.
    pub config: EvolutionConfig,
    trace: Vec<f64>,
    scratch: Vec<f64>,
    raw: Vec<f64>,
    logrow: Vec<f64>,
}

impl EvolutionaryProposer {
    /// With the paper's default settings.
    pub fn new(config: EvolutionConfig) -> Self {
        EvolutionaryProposer {
            config,
            trace: Vec::new(),
            scratch: Vec::new(),
            raw: Vec::new(),
            logrow: Vec::new(),
        }
    }

    fn score_population(
        &mut self,
        task: &SearchTask,
        model: &Mlp,
        pop: &[(usize, Vec<f64>)],
        clock: &mut TuningClock,
        costs: &ClockCosts,
    ) -> Vec<f64> {
        clock.charge_predictions(pop.len(), costs);
        pop.iter()
            .map(|(sk, vals)| {
                let st = &task.sketches[*sk];
                st.eval_features_into(vals, &mut self.scratch, &mut self.raw);
                log_transform_into(&self.raw, &mut self.logrow);
                let score = model.predict(&self.logrow);
                self.trace.push(score);
                score
            })
            .collect()
    }

    /// [`Proposer::propose`] restricted to a caller-chosen sketch set — the
    /// descent supervisor's fallback path, which routes only the *degraded*
    /// sketches of a task through evolutionary search while healthy sketches
    /// keep their gradient budget. Returns an empty batch for an empty
    /// sketch list.
    #[allow(clippy::too_many_arguments)]
    pub fn propose_for_sketches(
        &mut self,
        task: &SearchTask,
        model: &Mlp,
        n: usize,
        clock: &mut TuningClock,
        costs: &ClockCosts,
        rng: &mut StdRng,
        sketches: &[usize],
    ) -> Vec<(usize, Vec<f64>)> {
        if sketches.is_empty() || n == 0 {
            return Vec::new();
        }
        let cfg = self.config;
        // --- Initial population: elites from history + random samples -----
        let mut pop: Vec<(usize, Vec<f64>)> = Vec::with_capacity(cfg.population);
        // Quarantined sketches (persistent measurement failures) never seed
        // elites, even when the caller's sketch list probes them for
        // recovery — identical to the historical whole-task behavior.
        let mut elites: Vec<&(usize, Vec<f64>, f64)> = task
            .measured
            .iter()
            .filter(|(sk, _, _)| sketches.contains(sk) && !task.is_quarantined(*sk))
            .collect();
        elites.sort_by(|a, b| total_cmp_nan_last(&a.2, &b.2));
        let n_elite = ((cfg.population as f64 * cfg.elite_seed_frac) as usize)
            .min(elites.len());
        for e in elites.iter().take(n_elite) {
            pop.push((e.0, e.1.clone()));
        }
        while pop.len() < cfg.population {
            let sk = sketches[rng.gen_range(0..sketches.len())];
            let vals = random_schedule(&task.sketches[sk].program, rng, 32);
            pop.push((sk, vals));
        }
        clock.charge_evolution(cfg.population, costs);

        // --- Generations --------------------------------------------------
        let mut scores = self.score_population(task, model, &pop, clock, costs);
        for _ in 0..cfg.generations {
            // Rank and keep the better half as parents.
            let mut order: Vec<usize> = (0..pop.len()).collect();
            order.sort_by(|&a, &b| total_cmp_desc_nan_last(&scores[a], &scores[b]));
            let parents: Vec<(usize, Vec<f64>)> = order[..pop.len() / 2]
                .iter()
                .map(|&i| pop[i].clone())
                .collect();
            let mut next: Vec<(usize, Vec<f64>)> = parents.clone();
            while next.len() < cfg.population {
                let (sk, base) = &parents[rng.gen_range(0..parents.len())];
                let child = if rng.gen_bool(cfg.mutation_rate) {
                    mutate_schedule(&task.sketches[*sk].program, base, rng, 8)
                } else {
                    // Crossover within the same sketch.
                    let same: Vec<&(usize, Vec<f64>)> =
                        parents.iter().filter(|(s, _)| s == sk).collect();
                    let other = same[rng.gen_range(0..same.len())];
                    crossover_schedules(&task.sketches[*sk].program, base, &other.1, rng)
                };
                next.push((*sk, child));
            }
            clock.charge_evolution(cfg.population, costs);
            pop = next;
            scores = self.score_population(task, model, &pop, clock, costs);
        }

        // --- Pick the top-n unmeasured candidates -------------------------
        let mut order: Vec<usize> = (0..pop.len()).collect();
        order.sort_by(|&a, &b| total_cmp_desc_nan_last(&scores[a], &scores[b]));
        let mut out = Vec::with_capacity(n);
        let mut seen = std::collections::HashSet::new();
        for i in order {
            let (sk, vals) = &pop[i];
            // `random_schedule` falls back to its least-violating draw when
            // the sampling budget finds no fully-valid point; such candidates
            // would be rejected at measurement time, so drop them here rather
            // than waste proposal slots.
            if !task.sketches[*sk].program.constraints_ok(vals, 0.0) {
                continue;
            }
            let key = format!("{sk}:{vals:?}");
            if seen.contains(&key) || task.already_measured(*sk, vals) {
                continue;
            }
            seen.insert(key);
            out.push((*sk, vals.clone()));
            if out.len() >= n {
                break;
            }
        }
        out
    }
}

impl Default for EvolutionaryProposer {
    fn default() -> Self {
        Self::new(EvolutionConfig::default())
    }
}


impl Proposer for EvolutionaryProposer {
    fn name(&self) -> &'static str {
        "ansor-evolutionary"
    }

    fn propose(
        &mut self,
        task: &SearchTask,
        model: &Mlp,
        n: usize,
        clock: &mut TuningClock,
        costs: &ClockCosts,
        rng: &mut StdRng,
    ) -> Vec<(usize, Vec<f64>)> {
        // Quarantined sketches (persistent measurement failures) are skipped
        // both when seeding elites and when sampling. With no quarantine the
        // active list is the identity permutation, so the RNG stream matches
        // the fault-unaware search exactly.
        let active = task.active_sketches();
        self.propose_for_sketches(task, model, n, clock, costs, rng, &active)
    }

    fn take_prediction_trace(&mut self) -> Vec<f64> {
        std::mem::take(&mut self.trace)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{tune_task_round, TuneOptions};
    use felix_graph::{Op, Subgraph, Task};
    use felix_sim::{DeviceConfig, Simulator};
    use rand::SeedableRng;

    /// Pretraining dominates this suite's runtime, so every test shares one
    /// deterministic pretrained model (tests only read it or clone it).
    fn shared_model() -> &'static Mlp {
        static MODEL: std::sync::OnceLock<Mlp> = std::sync::OnceLock::new();
        MODEL.get_or_init(|| {
            let mut rng = StdRng::seed_from_u64(0);
            let ds = felix_cost::generate_dataset(&DeviceConfig::a5000(), 6, 12, 5);
            let mut mlp = Mlp::new(&mut rng);
            felix_cost::pretrain(
                &mut mlp,
                &ds.samples,
                &felix_cost::TrainConfig { epochs: 8, batch_size: 64, lr: 1e-3, seed: 0, ..Default::default() },
            );
            mlp
        })
    }

    fn setup() -> (SearchTask, Mlp, Simulator) {
        let sim = Simulator::new(DeviceConfig::a5000());
        let task = SearchTask::from_task(
            &Task {
                subgraph: Subgraph { ops: vec![Op::Dense { m: 512, k: 512, n: 512 }] },
                weight: 1,
            },
            &sim,
        );
        (task, shared_model().clone(), sim)
    }

    fn small_cfg() -> EvolutionConfig {
        EvolutionConfig { population: 64, generations: 2, ..Default::default() }
    }

    #[test]
    fn proposes_valid_unique_candidates() {
        let (task, model, _sim) = setup();
        let mut prop = EvolutionaryProposer::new(small_cfg());
        let mut clock = TuningClock::new();
        let costs = ClockCosts::default();
        let mut rng = StdRng::seed_from_u64(1);
        let cands = prop.propose(&task, &model, 16, &mut clock, &costs, &mut rng);
        assert!(!cands.is_empty());
        let mut seen = std::collections::HashSet::new();
        for (sk, vals) in &cands {
            assert!(task.sketches[*sk].program.constraints_ok(vals, 0.0));
            assert!(seen.insert(format!("{sk}:{vals:?}")), "duplicate candidate");
        }
        assert!(clock.now_s() > 0.0, "search time must be charged");
    }

    #[test]
    fn prediction_trace_is_recorded() {
        let (task, model, _sim) = setup();
        let mut prop = EvolutionaryProposer::new(small_cfg());
        let mut clock = TuningClock::new();
        let costs = ClockCosts::default();
        let mut rng = StdRng::seed_from_u64(2);
        prop.propose(&task, &model, 8, &mut clock, &costs, &mut rng);
        let trace = prop.take_prediction_trace();
        // population * (generations + 1) predictions.
        assert_eq!(trace.len(), 64 * 3);
        assert!(prop.take_prediction_trace().is_empty(), "trace drains");
    }

    /// A model predicting NaN for every input: the output-layer bias is
    /// patched to NaN through the serialized form (the field is private,
    /// and hidden-layer NaNs never reach the output — `f32::max` in the
    /// ReLU swallows them).
    fn nan_model() -> Mlp {
        let mut rng = StdRng::seed_from_u64(9);
        let mlp = Mlp::new(&mut rng);
        let mut bytes = Vec::new();
        mlp.save(&mut bytes).expect("save");
        // Layout: magic, layer count, (w, b) per layer, mean, std — so the
        // final bias (length 1) sits just before the two normalization
        // vectors at the tail.
        let d = mlp.input_mean.len();
        let off = bytes.len() - 2 * (8 + 4 * d) - 4;
        bytes[off..off + 4].copy_from_slice(&f32::NAN.to_le_bytes());
        Mlp::load(bytes.as_slice()).expect("load")
    }

    #[test]
    fn nan_cost_model_does_not_panic_ranking() {
        // A poisoned model predicts NaN for every candidate (e.g. weights
        // blown up by a bad fine-tuning batch). Ranking must survive that —
        // with `partial_cmp(..).expect(..)` comparators this test aborts
        // the process.
        let (mut task, _model, _sim) = setup();
        task.record(0, vec![2.0; task.sketches[0].program.vars.len()], 1.5);
        let nan_model = nan_model();
        let mut rng = StdRng::seed_from_u64(9);
        let mut prop = EvolutionaryProposer::new(small_cfg());
        let mut clock = TuningClock::new();
        let costs = ClockCosts::default();
        let cands = prop.propose(&task, &nan_model, 8, &mut clock, &costs, &mut rng);
        for (sk, vals) in &cands {
            assert!(task.sketches[*sk].program.constraints_ok(vals, 0.0));
        }
        let trace = prop.take_prediction_trace();
        assert!(!trace.is_empty() && trace.iter().all(|s| s.is_nan()));
    }

    #[test]
    fn evolution_beats_pure_random_on_average() {
        let (mut task, mut model, sim) = setup();
        let mut clock = TuningClock::new();
        let costs = ClockCosts::default();
        let opts = TuneOptions { measurements_per_round: 12, ..Default::default() };
        let mut rng = StdRng::seed_from_u64(3);
        let mut evo = EvolutionaryProposer::new(small_cfg());
        for _ in 0..3 {
            tune_task_round(
                &mut task, &mut evo, &mut model, &sim, &mut clock, &costs, &opts, &mut rng,
            );
        }
        let evo_best = task.best_latency_ms;

        let mut task2 = SearchTask::from_task(
            &Task {
                subgraph: Subgraph { ops: vec![Op::Dense { m: 512, k: 512, n: 512 }] },
                weight: 1,
            },
            &sim,
        );
        let mut rnd = crate::RandomProposer;
        let mut clock2 = TuningClock::new();
        for _ in 0..3 {
            tune_task_round(
                &mut task2, &mut rnd, &mut model, &sim, &mut clock2, &costs, &opts, &mut rng,
            );
        }
        // Cost-model-guided search should find at least as good a schedule.
        assert!(
            evo_best <= task2.best_latency_ms * 1.3,
            "evolution {evo_best} vs random {}",
            task2.best_latency_ms
        );
    }
}
