//! The Ansor-TenSet baseline: evolutionary schedule search plus the
//! round-based multi-task tuning loop (paper §5, Zheng et al. OSDI '20).
//!
//! This crate also hosts the *shared* tuning infrastructure — [`SearchTask`]
//! states, the [`Proposer`] abstraction, per-round measurement/fine-tuning,
//! and the task scheduler — because the paper keeps everything except the
//! candidate-proposal algorithm identical between Ansor and Felix for a fair
//! comparison (§3.5: Felix adopts Ansor's round-based tuning and task
//! scheduler).

pub mod evolution;

pub use evolution::EvolutionaryProposer;

use felix_cost::{fine_tune, ingest_sample, Mlp, Sample};
use felix_features::{extract_features, FeatureSet};
use felix_graph::lower::lower_subgraph;
use felix_graph::Task;
use felix_sim::clock::ClockCosts;
use felix_sim::vendor::hardware_params;
use felix_sim::{candidate_key, FaultKind, FaultPlan, MeasureOutcome, Simulator, TuningClock};
use felix_tir::sketch::generate_sketches;
use felix_tir::Program;
use rand::rngs::StdRng;
use rand::Rng;
use std::collections::HashSet;

/// One symbolic sketch of a task, with its extracted feature formulas.
#[derive(Clone, Debug)]
pub struct SketchState {
    /// Sketch label.
    pub name: &'static str,
    /// The symbolic program.
    pub program: Program,
    /// The 82 feature formulas over this sketch's schedule variables.
    pub features: FeatureSet,
    /// Tape-compiled feature evaluator (hot path of candidate scoring).
    pub compiled: felix_expr::CompiledExprs,
}

impl SketchState {
    /// Raw feature values of a concrete schedule via the compiled tape
    /// (identical to `features.eval`, minus the full-pool walk).
    pub fn eval_features(&self, values: &[f64], scratch: &mut Vec<f64>) -> Vec<f64> {
        self.compiled.eval_into(values, scratch)
    }

    /// [`SketchState::eval_features`] into a caller-owned output buffer
    /// (cleared first); with both buffers reused, scoring loops allocate
    /// nothing per candidate.
    pub fn eval_features_into(
        &self,
        values: &[f64],
        scratch: &mut Vec<f64>,
        out: &mut Vec<f64>,
    ) {
        self.compiled.eval_write(values, scratch, out);
    }
}

/// Which proposal algorithm a sketch is currently tuned with — the rungs of
/// the supervisor's degradation ladder. Every sketch starts at
/// [`SketchMode::Gradient`]; the descent supervisor escalates a sketch one
/// rung at a time when its seeds keep failing, and de-escalates
/// [`SketchMode::ClippedGradient`] back to full gradient descent after a
/// clean round. [`SketchMode::Evolutionary`] is sticky: a sketch that
/// reached the bottom rung (panicking or pathological objective, or clipped
/// descent still diverging) stays on the discrete proposer, which cannot
/// diverge.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum SketchMode {
    /// Full-speed gradient descent (the healthy default).
    #[default]
    Gradient,
    /// Gradient descent with a tight gradient-norm clip (first rung of
    /// degradation; recoverable).
    ClippedGradient,
    /// The evolutionary fallback proposer (final rung; sticky).
    Evolutionary,
}

impl SketchMode {
    /// Stable wire label (persisted in health records and checkpoints).
    pub fn label(self) -> &'static str {
        match self {
            SketchMode::Gradient => "gd",
            SketchMode::ClippedGradient => "gd-clipped",
            SketchMode::Evolutionary => "evo",
        }
    }

    /// Parses a [`Self::label`] string.
    pub fn from_label(label: &str) -> Option<SketchMode> {
        match label {
            "gd" => Some(SketchMode::Gradient),
            "gd-clipped" => Some(SketchMode::ClippedGradient),
            "evo" => Some(SketchMode::Evolutionary),
            _ => None,
        }
    }

    /// The next rung down the degradation ladder.
    pub fn escalated(self) -> SketchMode {
        match self {
            SketchMode::Gradient => SketchMode::ClippedGradient,
            SketchMode::ClippedGradient | SketchMode::Evolutionary => SketchMode::Evolutionary,
        }
    }

    /// Whether this mode still runs gradient descent.
    pub fn uses_gradient(self) -> bool {
        self != SketchMode::Evolutionary
    }
}

/// What the descent supervisor observed during one `propose` call: numeric
/// failure counters plus the per-sketch escalation/recovery decisions. A
/// clean report is all-zero/empty — the invariant behind the healthy-run
/// bit-parity guarantee.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct HealthReport {
    /// NaN/Inf/overflow events (objective, gradient, or feature outputs).
    pub nonfinite_events: usize,
    /// Monotone-divergence events over the supervisor's sliding window.
    pub divergence_events: usize,
    /// Seeds restarted from their dedicated RNG substreams.
    pub seed_restarts: usize,
    /// Gradient-norm clips applied.
    pub grad_clips: usize,
    /// Worker panics caught (each poisons one sketch, not the process).
    pub panics_caught: usize,
    /// Wall-clock descent overrun charged to the tuning clock (seconds).
    pub deadline_overrun_s: f64,
    /// Sketches whose every seed exhausted its restart budget this round
    /// (escalated one rung).
    pub exhausted_sketches: Vec<usize>,
    /// Sketches whose objective panicked this round (escalated straight to
    /// [`SketchMode::Evolutionary`]).
    pub poisoned_sketches: Vec<usize>,
    /// Sketches whose tape compiled to a pathological (non-finite at the
    /// probe point) objective (escalated straight to
    /// [`SketchMode::Evolutionary`]).
    pub pathological_sketches: Vec<usize>,
    /// Clipped-mode sketches that completed a clean descent this round
    /// (de-escalated back to [`SketchMode::Gradient`]).
    pub recovered_sketches: Vec<usize>,
}

impl HealthReport {
    /// True when nothing noteworthy happened — no counters, no
    /// escalations, no recoveries.
    pub fn is_clean(&self) -> bool {
        self.nonfinite_events == 0
            && self.divergence_events == 0
            && self.seed_restarts == 0
            && self.grad_clips == 0
            && self.panics_caught == 0
            && self.deadline_overrun_s == 0.0
            && self.exhausted_sketches.is_empty()
            && self.poisoned_sketches.is_empty()
            && self.pathological_sketches.is_empty()
            && self.recovered_sketches.is_empty()
    }

    /// Sketches this report degrades (exhausted ∪ poisoned ∪ pathological,
    /// deduplicated).
    pub fn degraded_sketches(&self) -> Vec<usize> {
        let mut all: Vec<usize> = self
            .exhausted_sketches
            .iter()
            .chain(&self.poisoned_sketches)
            .chain(&self.pathological_sketches)
            .copied()
            .collect();
        all.sort_unstable();
        all.dedup();
        all
    }

    /// Folds another report into this one (counters add, sketch lists
    /// union).
    pub fn merge(&mut self, other: &HealthReport) {
        self.nonfinite_events += other.nonfinite_events;
        self.divergence_events += other.divergence_events;
        self.seed_restarts += other.seed_restarts;
        self.grad_clips += other.grad_clips;
        self.panics_caught += other.panics_caught;
        self.deadline_overrun_s += other.deadline_overrun_s;
        for (dst, src) in [
            (&mut self.exhausted_sketches, &other.exhausted_sketches),
            (&mut self.poisoned_sketches, &other.poisoned_sketches),
            (&mut self.pathological_sketches, &other.pathological_sketches),
            (&mut self.recovered_sketches, &other.recovered_sketches),
        ] {
            dst.extend(src.iter().copied());
            dst.sort_unstable();
            dst.dedup();
        }
    }
}

/// Search state of one tuning task (fused subgraph).
#[derive(Clone, Debug)]
pub struct SearchTask {
    /// Display name.
    pub name: String,
    /// Stable workload identity ([`felix_graph::Subgraph::workload_key`]):
    /// unique per deduplicated subgraph, unlike `name`, and therefore the
    /// key under which this task's measurements are persisted and matched
    /// on replay.
    pub workload_key: String,
    /// Occurrences in the network.
    pub weight: usize,
    /// The generated sketches.
    pub sketches: Vec<SketchState>,
    /// Best measured latency so far (ms), `INFINITY` before any measurement.
    pub best_latency_ms: f64,
    /// Best (sketch, values) found.
    pub best_schedule: Option<(usize, Vec<f64>)>,
    /// All measurements `(sketch, values, latency_ms)`.
    pub measured: Vec<(usize, Vec<f64>, f64)>,
    /// Training samples of every measurement (replay buffer for the
    /// cost-model updates). Failed measurements never enter this buffer.
    pub samples: Vec<Sample>,
    /// Candidates whose measurement failed after exhausting retries:
    /// `(sketch, values, fault kind)`. They count as "measured" for dedup
    /// so the proposer never re-spends budget on them.
    pub failed: Vec<(usize, Vec<f64>, FaultKind)>,
    /// Failure/retry counters, consumed by the task scheduler to
    /// deprioritize tasks burning their budget on faults.
    pub fault_stats: TaskFaultStats,
    /// Dedup set of measured candidates.
    measured_keys: HashSet<String>,
    /// Consecutive failed candidates per sketch (reset by any success).
    fail_streak: Vec<usize>,
    /// Sketches quarantined after persistent failures; proposers skip them
    /// until a success on the sketch lifts the quarantine.
    quarantined: Vec<bool>,
    /// Per-sketch degradation-ladder rung, updated by
    /// [`SearchTask::apply_health`] (all-[`SketchMode::Gradient`] until the
    /// supervisor reports trouble).
    sketch_modes: Vec<SketchMode>,
    /// Cached warm-start hints `(sketch, values)` — schedules transferred
    /// from a structurally identical task in a schedule store. Proposers
    /// may seed descent from them; they are never measured directly and an
    /// empty list leaves every proposer byte-identical to a hint-free run.
    pub warm_hints: Vec<(usize, Vec<f64>)>,
    /// Rounds spent on this task.
    pub rounds: usize,
}

/// Failure and retry counters of one task's measurement history.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TaskFaultStats {
    /// Candidates lost to compile failures.
    pub build_errors: usize,
    /// Candidates lost to watchdog timeouts (after retries).
    pub timeouts: usize,
    /// Candidates lost to device/RPC errors (after retries).
    pub device_errors: usize,
    /// Total retry attempts spent (including ones that later succeeded).
    pub retries: usize,
}

impl TaskFaultStats {
    /// Total candidates lost to faults.
    pub fn failures(&self) -> usize {
        self.build_errors + self.timeouts + self.device_errors
    }

    /// Measurement-budget attempts wasted on faults (failures + retries).
    pub fn wasted_attempts(&self) -> usize {
        self.failures() + self.retries
    }
}

impl SearchTask {
    /// Builds the search state for a fused subgraph on a device.
    pub fn from_task(task: &Task, sim: &Simulator) -> Self {
        let hw = hardware_params(&sim.device);
        let p0 = lower_subgraph(&task.subgraph);
        let sketches: Vec<SketchState> = generate_sketches(&p0, &hw)
            .into_iter()
            .map(|sk| {
                let mut program = sk.program;
                let features = extract_features(&mut program);
                let compiled =
                    felix_expr::CompiledExprs::compile(&program.pool, &features.exprs);
                SketchState { name: sk.name, program, features, compiled }
            })
            .collect();
        let n_sketches = sketches.len();
        SearchTask {
            name: task.subgraph.name(),
            workload_key: task.subgraph.workload_key(),
            weight: task.weight,
            sketches,
            best_latency_ms: f64::INFINITY,
            best_schedule: None,
            measured: Vec::new(),
            samples: Vec::new(),
            failed: Vec::new(),
            fault_stats: TaskFaultStats::default(),
            measured_keys: HashSet::new(),
            fail_streak: vec![0; n_sketches],
            quarantined: vec![false; n_sketches],
            sketch_modes: vec![SketchMode::Gradient; n_sketches],
            warm_hints: Vec::new(),
            rounds: 0,
        }
    }

    /// Consecutive candidate failures on one sketch that trigger
    /// quarantine.
    pub const QUARANTINE_STREAK: usize = 6;

    fn key(sketch: usize, vals: &[f64]) -> String {
        format!("{sketch}:{vals:?}")
    }

    /// Whether a candidate has already been measured.
    pub fn already_measured(&self, sketch: usize, vals: &[f64]) -> bool {
        self.measured_keys.contains(&Self::key(sketch, vals))
    }

    /// Records a measurement, updating the incumbent. A success also clears
    /// the sketch's failure streak and lifts any quarantine (the fault was
    /// evidently transient).
    pub fn record(&mut self, sketch: usize, vals: Vec<f64>, latency_ms: f64) {
        self.measured_keys.insert(Self::key(sketch, &vals));
        if latency_ms < self.best_latency_ms {
            self.best_latency_ms = latency_ms;
            self.best_schedule = Some((sketch, vals.clone()));
        }
        if let Some(streak) = self.fail_streak.get_mut(sketch) {
            *streak = 0;
        }
        if let Some(q) = self.quarantined.get_mut(sketch) {
            *q = false;
        }
        self.measured.push((sketch, vals, latency_ms));
    }

    /// Records a candidate whose measurement failed after exhausting its
    /// retry budget. The candidate joins the dedup set (never re-proposed),
    /// the per-kind counters advance, and a sketch whose candidates fail
    /// [`Self::QUARANTINE_STREAK`] times in a row is quarantined.
    pub fn record_failure(&mut self, sketch: usize, vals: Vec<f64>, kind: FaultKind) {
        self.measured_keys.insert(Self::key(sketch, &vals));
        match kind {
            FaultKind::BuildError => self.fault_stats.build_errors += 1,
            FaultKind::Timeout => self.fault_stats.timeouts += 1,
            FaultKind::DeviceError => self.fault_stats.device_errors += 1,
        }
        if let Some(streak) = self.fail_streak.get_mut(sketch) {
            *streak += 1;
            if *streak >= Self::QUARANTINE_STREAK {
                self.quarantined[sketch] = true;
            }
        }
        self.failed.push((sketch, vals, kind));
    }

    /// Whether a sketch is currently quarantined.
    pub fn is_quarantined(&self, sketch: usize) -> bool {
        self.quarantined.get(sketch).copied().unwrap_or(false)
    }

    /// Indices of sketches proposers should draw from: every
    /// non-quarantined sketch, or all sketches when everything is
    /// quarantined (so a fully-faulted task still probes for recovery).
    pub fn active_sketches(&self) -> Vec<usize> {
        let active: Vec<usize> = (0..self.sketches.len())
            .filter(|&i| !self.quarantined[i])
            .collect();
        if active.is_empty() {
            (0..self.sketches.len()).collect()
        } else {
            active
        }
    }

    /// The degradation-ladder rung of one sketch.
    pub fn sketch_mode(&self, sketch: usize) -> SketchMode {
        self.sketch_modes.get(sketch).copied().unwrap_or_default()
    }

    /// Per-sketch degradation-ladder rungs.
    pub fn sketch_modes(&self) -> &[SketchMode] {
        &self.sketch_modes
    }

    /// Overwrites the per-sketch modes — the replay path, where a persisted
    /// health record (not a fresh supervisor decision) is authoritative.
    ///
    /// # Panics
    ///
    /// Panics if `modes` does not have one entry per sketch.
    pub fn set_sketch_modes(&mut self, modes: &[SketchMode]) {
        assert_eq!(modes.len(), self.sketches.len(), "sketch count changed");
        self.sketch_modes.copy_from_slice(modes);
    }

    /// Applies one round's supervisor decisions to the per-sketch modes:
    /// exhausted sketches step one rung down the degradation ladder,
    /// poisoned (panicking) and pathological sketches jump straight to the
    /// evolutionary fallback, and recovered clipped sketches step back up.
    /// Returns whether any mode changed.
    pub fn apply_health(&mut self, report: &HealthReport) -> bool {
        let mut changed = false;
        let mut set = |modes: &mut Vec<SketchMode>, sk: usize, mode: SketchMode| {
            if let Some(m) = modes.get_mut(sk) {
                if *m != mode {
                    *m = mode;
                    changed = true;
                }
            }
        };
        for &sk in &report.exhausted_sketches {
            let next = self.sketch_mode(sk).escalated();
            set(&mut self.sketch_modes, sk, next);
        }
        for &sk in report
            .poisoned_sketches
            .iter()
            .chain(&report.pathological_sketches)
        {
            set(&mut self.sketch_modes, sk, SketchMode::Evolutionary);
        }
        for &sk in &report.recovered_sketches {
            if self.sketch_mode(sk) == SketchMode::ClippedGradient {
                set(&mut self.sketch_modes, sk, SketchMode::Gradient);
            }
        }
        changed
    }

    /// Captures the complete mutable search state for checkpointing.
    ///
    /// `fail_streak` and `quarantined` are copied explicitly rather than
    /// replayed: the interleaving of `measured` and `failed` (which a
    /// success-resets-the-streak replay would need) is not recoverable from
    /// the two separate vectors.
    pub fn snapshot(&self) -> TaskSnapshot {
        TaskSnapshot {
            workload_key: self.workload_key.clone(),
            best_latency_ms: self.best_latency_ms,
            best_schedule: self.best_schedule.clone(),
            measured: self.measured.clone(),
            failed: self.failed.clone(),
            fault_stats: self.fault_stats,
            fail_streak: self.fail_streak.clone(),
            quarantined: self.quarantined.clone(),
            sketch_modes: self.sketch_modes.clone(),
            warm_hints: self.warm_hints.clone(),
            rounds: self.rounds,
        }
    }

    /// Restores a snapshot into a freshly built task (same subgraph and
    /// device, so the same sketches). The dedup set and the replay-buffer
    /// samples are rebuilt deterministically from `measured` — features are
    /// closed-form functions of the schedule values, so re-evaluating them
    /// reproduces every sample bit for bit and they need not be persisted.
    ///
    /// # Panics
    ///
    /// Panics if the snapshot's workload key or sketch-shaped vectors do
    /// not match this task (checkpoint from a different network or device).
    pub fn restore(&mut self, snap: TaskSnapshot) {
        assert_eq!(
            snap.workload_key, self.workload_key,
            "checkpoint task mismatch (different network or task order?)"
        );
        assert_eq!(snap.fail_streak.len(), self.sketches.len(), "sketch count changed");
        assert_eq!(snap.quarantined.len(), self.sketches.len(), "sketch count changed");
        assert_eq!(snap.sketch_modes.len(), self.sketches.len(), "sketch count changed");
        self.best_latency_ms = snap.best_latency_ms;
        self.best_schedule = snap.best_schedule;
        self.fault_stats = snap.fault_stats;
        self.fail_streak = snap.fail_streak;
        self.quarantined = snap.quarantined;
        self.sketch_modes = snap.sketch_modes;
        self.warm_hints = snap.warm_hints;
        self.rounds = snap.rounds;
        self.measured_keys = snap
            .measured
            .iter()
            .map(|(sk, vals, _)| Self::key(*sk, vals))
            .chain(snap.failed.iter().map(|(sk, vals, _)| Self::key(*sk, vals)))
            .collect();
        self.samples = snap
            .measured
            .iter()
            .map(|(sk, vals, latency)| {
                let st = &self.sketches[*sk];
                ingest_sample(&st.program, &st.features, vals, *latency)
            })
            .collect();
        self.measured = snap.measured;
        self.failed = snap.failed;
    }
}

/// The complete mutable search state of a [`SearchTask`], detached from the
/// (deterministically rebuildable) sketches — what a checkpoint persists.
#[derive(Clone, Debug, PartialEq)]
pub struct TaskSnapshot {
    /// [`SearchTask::workload_key`], verified on restore.
    pub workload_key: String,
    /// Best measured latency (ms).
    pub best_latency_ms: f64,
    /// Best (sketch, values) found.
    pub best_schedule: Option<(usize, Vec<f64>)>,
    /// All successful measurements in order.
    pub measured: Vec<(usize, Vec<f64>, f64)>,
    /// All exhausted-retry failures in order.
    pub failed: Vec<(usize, Vec<f64>, FaultKind)>,
    /// Fault counters.
    pub fault_stats: TaskFaultStats,
    /// Per-sketch consecutive-failure streaks.
    pub fail_streak: Vec<usize>,
    /// Per-sketch quarantine flags.
    pub quarantined: Vec<bool>,
    /// Per-sketch degradation-ladder rungs.
    pub sketch_modes: Vec<SketchMode>,
    /// Cached warm-start hints (schedule-store transfers).
    pub warm_hints: Vec<(usize, Vec<f64>)>,
    /// Rounds spent on the task.
    pub rounds: usize,
}

/// Per-round observability counters of a proposer, drained via
/// [`Proposer::take_stats`]. One entry is recorded per `propose` call.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct TunerStats {
    /// Gradient-descent steps executed this round (seeds × steps for the
    /// gradient proposer; zero for proposers without a descent phase).
    pub grad_steps: usize,
    /// Wall-clock descent throughput, in steps per second.
    pub steps_per_sec: f64,
    /// Rounded trajectory points examined this round.
    pub candidates: usize,
    /// Fraction of rounded points rejected because a validity constraint
    /// was violated (the penalty terms failed to keep the seed feasible).
    pub penalty_violation_rate: f64,
    /// Fraction of rounded points rejected as duplicates of an earlier
    /// point or of an already-measured schedule (rounding collapsed distinct
    /// relaxed points onto one lattice point).
    pub rounding_rejection_rate: f64,
    /// Compiled-objective cache hits (sketch objectives reused from an
    /// earlier round on the same task).
    pub cache_hits: usize,
    /// Compiled-objective cache misses (objectives built this round).
    pub cache_misses: usize,
    /// Worker threads the round ran on (1 = serial).
    pub threads: usize,
    /// Total expression-pool nodes across this round's sketch objectives
    /// (what a full pool sweep would walk per evaluation).
    pub pool_nodes: usize,
    /// Total compiled-tape instructions across this round's sketch
    /// objectives (what the fused forward+reverse passes actually touch).
    pub tape_nodes: usize,
    /// Seconds spent compiling the gradient tapes behind this round's
    /// objectives (paid once at objective build time; later rounds report
    /// the same amortized figure for cached objectives).
    pub tape_compile_s: f64,
    /// Candidates lost to measurement faults this round (after retries).
    pub measure_failures: usize,
    /// Measurement retry attempts spent this round.
    pub measure_retries: usize,
    /// Seeds the descent supervisor restarted this round.
    pub seed_restarts: usize,
    /// Non-finite objective/gradient/feature events this round.
    pub nonfinite_events: usize,
    /// Worker panics caught and quarantined this round.
    pub panics_caught: usize,
    /// Sketches running degraded (below [`SketchMode::Gradient`]) after
    /// this round.
    pub degraded_sketches: usize,
    /// Wall-clock descent overrun charged to the tuning clock this round
    /// (seconds; zero unless the deadline watchdog fired).
    pub deadline_overrun_s: f64,
    /// Tasks served a finished schedule straight from a persistent
    /// schedule store (exact cache hit: no tuning, no RNG or clock spend).
    /// Zero for every proposer round; reported by the cache layer.
    pub schedule_cache_hits: usize,
    /// Tasks warm-started from a structurally matching store entry.
    pub schedule_cache_warm_starts: usize,
    /// Store entries skipped because they were written by a different
    /// sketch-generator version (stale fingerprint). Zero for every
    /// proposer round; reported by the cache layer.
    pub schedule_cache_stale: usize,
    /// Sketch objectives served from a shared cross-task tape cache this
    /// round (compiled-tape compiles skipped entirely).
    pub tape_cache_hits: usize,
    /// Shared tape-cache entries evicted as stale (built under a different
    /// sketch-generator fingerprint) while building this round's
    /// objectives.
    pub tape_cache_stale: usize,
}

impl TunerStats {
    /// One-line human-readable rendering for bench binaries and logs.
    pub fn summary(&self) -> String {
        let mut line = format!(
            "steps {} ({:.0}/s, {} thr) cand {} viol {:.0}% dup {:.0}% cache {}/{} tape {}/{} nodes ({:.1} ms compile) fail {} retry {}",
            self.grad_steps,
            self.steps_per_sec,
            self.threads,
            self.candidates,
            self.penalty_violation_rate * 100.0,
            self.rounding_rejection_rate * 100.0,
            self.cache_hits,
            self.cache_hits + self.cache_misses,
            self.tape_nodes,
            self.pool_nodes,
            self.tape_compile_s * 1e3,
            self.measure_failures,
            self.measure_retries,
        );
        if self.seed_restarts > 0
            || self.nonfinite_events > 0
            || self.panics_caught > 0
            || self.degraded_sketches > 0
            || self.deadline_overrun_s > 0.0
        {
            line.push_str(&format!(
                " health[restart {} nonfinite {} panic {} degraded {} overrun {:.1}s]",
                self.seed_restarts,
                self.nonfinite_events,
                self.panics_caught,
                self.degraded_sketches,
                self.deadline_overrun_s,
            ));
        }
        if self.schedule_cache_hits > 0
            || self.schedule_cache_warm_starts > 0
            || self.schedule_cache_stale > 0
        {
            line.push_str(&format!(
                " sched-cache[hit {} warm {} stale {}]",
                self.schedule_cache_hits,
                self.schedule_cache_warm_starts,
                self.schedule_cache_stale,
            ));
        }
        if self.tape_cache_hits > 0 || self.tape_cache_stale > 0 {
            line.push_str(&format!(
                " tape-cache[hit {} stale {}]",
                self.tape_cache_hits, self.tape_cache_stale,
            ));
        }
        line
    }
}

/// A candidate-proposal algorithm: the only part that differs between Ansor
/// (evolutionary) and Felix (gradient descent).
pub trait Proposer {
    /// Algorithm name for reports.
    fn name(&self) -> &'static str;

    /// Per-round observability counters since the last drain (empty for
    /// proposers that do not record any).
    fn take_stats(&mut self) -> Vec<TunerStats> {
        Vec::new()
    }

    /// Proposes up to `n` unmeasured candidates `(sketch_idx, values)` for
    /// one round, charging its own search time to `clock`.
    fn propose(
        &mut self,
        task: &SearchTask,
        model: &Mlp,
        n: usize,
        clock: &mut TuningClock,
        costs: &ClockCosts,
        rng: &mut StdRng,
    ) -> Vec<(usize, Vec<f64>)>;

    /// Chronological predicted scores of every candidate examined in the
    /// last `propose` call (for the paper's Fig. 8); drained on read.
    fn take_prediction_trace(&mut self) -> Vec<f64> {
        Vec::new()
    }

    /// Drains the supervisor health report of the last `propose` call.
    /// Default: a clean report (proposers without a descent phase cannot
    /// diverge).
    fn take_health(&mut self) -> HealthReport {
        HealthReport::default()
    }

    /// Informs the proposer how the measurement of its last `propose` batch
    /// went, so failure/retry counters can land in the same per-round stats
    /// record as the search counters. Default: ignored.
    fn note_measurement(&mut self, _report: &RoundReport) {}
}

/// One finished measurement (success, or failure after exhausting retries),
/// as delivered to a [`MeasurementSink`] the moment the tuner records it.
#[derive(Clone, Copy, Debug)]
pub struct MeasurementEvent<'a> {
    /// The task's stable workload key ([`SearchTask::workload_key`]).
    pub workload_key: &'a str,
    /// The task's display name.
    pub task_name: &'a str,
    /// Sketch index of the candidate.
    pub sketch: usize,
    /// Sketch label (validates sketch identity on replay).
    pub sketch_name: &'static str,
    /// The concrete schedule-variable assignment.
    pub values: &'a [f64],
    /// Measured latency (ms) or the final fault.
    pub outcome: Result<f64, FaultKind>,
    /// Retry attempts this candidate consumed.
    pub retries: usize,
    /// Simulated tuning-clock time when the measurement completed.
    pub time_s: f64,
}

/// One round's supervisor health report the moment its degradation
/// decisions were applied to the task, as delivered to a
/// [`MeasurementSink`].
#[derive(Clone, Debug)]
pub struct HealthEvent<'a> {
    /// The task's stable workload key ([`SearchTask::workload_key`]).
    pub workload_key: &'a str,
    /// The task's display name.
    pub task_name: &'a str,
    /// Tuning round (0-based) whose descent produced the report.
    pub round: usize,
    /// The supervisor's counters and escalation/recovery decisions.
    pub report: &'a HealthReport,
    /// Per-sketch modes *after* applying the report — the authoritative
    /// state a replay restores.
    pub modes: &'a [SketchMode],
    /// Simulated tuning-clock time when the report was recorded.
    pub time_s: f64,
}

/// A consumer of measurement events — the hook a durable record log (or any
/// other observer) attaches to the tuning loop. Sinks only *observe*: they
/// must not touch the RNG or the clock, so a run with a sink attached stays
/// bit-identical to one without.
pub trait MeasurementSink {
    /// Called once per finished measurement, in execution order.
    fn record(&mut self, event: &MeasurementEvent<'_>);

    /// Called once per round whose health report is non-clean or changed a
    /// sketch mode (fault-free rounds emit nothing, keeping their logs
    /// byte-identical to pre-supervisor ones). Default: ignored.
    fn record_health(&mut self, _event: &HealthEvent<'_>) {}
}

/// Retry-with-backoff policy for failed measurements, charged against the
/// tuning clock (a retried candidate costs real tuning time, exactly as a
/// flaky device does in AutoTVM/MetaSchedule).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MeasurePolicy {
    /// Maximum retries per candidate after the first attempt (build errors
    /// are never retried — rebuilding the same kernel cannot succeed).
    pub max_retries: usize,
    /// Backoff before the first retry, in simulated seconds.
    pub backoff_s: f64,
    /// Multiplier applied to the backoff after each retry (exponential
    /// backoff).
    pub backoff_mult: f64,
}

impl Default for MeasurePolicy {
    fn default() -> Self {
        MeasurePolicy { max_retries: 2, backoff_s: 0.5, backoff_mult: 2.0 }
    }
}

impl MeasurePolicy {
    /// Backoff before retry number `retry` (0-based), in seconds.
    pub fn backoff_for(&self, retry: usize) -> f64 {
        #[allow(clippy::cast_possible_truncation, clippy::cast_possible_wrap)]
        {
            self.backoff_s * self.backoff_mult.powi(retry as i32)
        }
    }
}

/// What one call of [`tune_task_round`] did with its measurement budget,
/// plus the descent supervisor's health report for the round.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RoundReport {
    /// Candidates measured successfully.
    pub measured: usize,
    /// Candidates lost to faults after exhausting retries.
    pub failed: usize,
    /// Retry attempts spent (including retries that eventually succeeded).
    pub retries: usize,
    /// The proposer's supervisor report (clean for proposers without a
    /// descent phase and for healthy rounds).
    pub health: HealthReport,
}

/// Options of the round-based tuner.
#[derive(Clone, Copy, Debug)]
pub struct TuneOptions {
    /// Hardware measurements per round (Felix 16, Ansor 64; §5).
    pub measurements_per_round: usize,
    /// Whether to fine-tune the cost model on each round's measurements.
    pub update_model: bool,
    /// Fine-tuning epochs.
    pub fine_tune_epochs: usize,
    /// Fine-tuning learning rate.
    pub fine_tune_lr: f32,
    /// Fault injection applied to measurements (zero by default; with the
    /// zero plan the whole pipeline is byte-identical to one without the
    /// fault layer).
    pub fault_plan: FaultPlan,
    /// Retry/backoff policy for failed measurements.
    pub measure_policy: MeasurePolicy,
}

impl Default for TuneOptions {
    fn default() -> Self {
        TuneOptions {
            measurements_per_round: 16,
            update_model: true,
            fine_tune_epochs: 5,
            fine_tune_lr: 4e-4,
            fault_plan: FaultPlan::none(),
            measure_policy: MeasurePolicy::default(),
        }
    }
}

/// Runs one tuning round on a task: propose → measure (with retry/backoff
/// on transient faults) → update model (Algorithm 1). Returns what happened
/// to the measurement budget.
#[allow(clippy::too_many_arguments)]
pub fn tune_task_round(
    task: &mut SearchTask,
    proposer: &mut dyn Proposer,
    model: &mut Mlp,
    sim: &Simulator,
    clock: &mut TuningClock,
    costs: &ClockCosts,
    opts: &TuneOptions,
    rng: &mut StdRng,
) -> RoundReport {
    tune_task_round_with_sink(task, proposer, model, sim, clock, costs, opts, rng, None)
}

/// [`tune_task_round`] with an optional [`MeasurementSink`] receiving every
/// finished measurement. With `None` (or a sink attached) the search state,
/// RNG stream, and clock evolve identically — the sink is a pure observer.
#[allow(clippy::too_many_arguments)]
pub fn tune_task_round_with_sink(
    task: &mut SearchTask,
    proposer: &mut dyn Proposer,
    model: &mut Mlp,
    sim: &Simulator,
    clock: &mut TuningClock,
    costs: &ClockCosts,
    opts: &TuneOptions,
    rng: &mut StdRng,
    mut sink: Option<&mut (dyn MeasurementSink + '_)>,
) -> RoundReport {
    let candidates = proposer.propose(task, model, opts.measurements_per_round, clock, costs, rng);
    // Apply the supervisor's escalation/recovery decisions before anything
    // else consumes the round: degradation takes effect from the next
    // propose call, and the decision point is what the record log persists
    // (so a replay re-applies the exact same ladder moves).
    let health = proposer.take_health();
    let modes_changed = task.apply_health(&health);
    if modes_changed || !health.is_clean() {
        if let Some(s) = sink.as_deref_mut() {
            s.record_health(&HealthEvent {
                workload_key: &task.workload_key,
                task_name: &task.name,
                round: task.rounds,
                report: &health,
                modes: task.sketch_modes(),
                time_s: clock.now_s(),
            });
        }
    }
    let mut new_samples = Vec::new();
    let mut report = RoundReport { health, ..RoundReport::default() };
    for (sketch, vals) in candidates {
        if task.already_measured(sketch, &vals) {
            continue;
        }
        let st = &task.sketches[sketch];
        if !st.program.constraints_ok(&vals, 1e-9) {
            continue;
        }
        // Attempt loop: transient faults (timeouts, device errors) are
        // retried up to the policy bound with exponential backoff; build
        // errors are deterministic and fail immediately. Every attempt —
        // successful, failed, or retried — is charged to the tuning clock.
        // With a zero-rate plan this loop runs exactly one iteration and
        // consumes the measurement RNG and clock identically to the
        // fault-free pipeline.
        let key = candidate_key(sketch, &vals);
        let mut attempt = 0u32;
        let fate = loop {
            let outcome = sim.measure_outcome(
                &st.program,
                &st.features,
                &vals,
                rng,
                &opts.fault_plan,
                key,
                attempt,
            );
            match outcome {
                MeasureOutcome::Ok(latency) => {
                    clock.charge_measurement(sim.device.rpc, costs);
                    break Ok(latency);
                }
                MeasureOutcome::Fail(kind) => {
                    clock.charge_failed_measurement(kind, sim.device.rpc, costs);
                    let retries_spent = attempt as usize;
                    if kind.retryable() && retries_spent < opts.measure_policy.max_retries {
                        clock.advance(opts.measure_policy.backoff_for(retries_spent));
                        report.retries += 1;
                        task.fault_stats.retries += 1;
                        attempt += 1;
                        continue;
                    }
                    break Err(kind);
                }
            }
        };
        if let Some(s) = sink.as_deref_mut() {
            s.record(&MeasurementEvent {
                workload_key: &task.workload_key,
                task_name: &task.name,
                sketch,
                sketch_name: st.name,
                values: &vals,
                outcome: fate,
                retries: attempt as usize,
                time_s: clock.now_s(),
            });
        }
        match fate {
            Ok(latency) => {
                new_samples.push(ingest_sample(&st.program, &st.features, &vals, latency));
                task.record(sketch, vals, latency);
                report.measured += 1;
            }
            Err(kind) => {
                task.record_failure(sketch, vals, kind);
                report.failed += 1;
            }
        }
    }
    if opts.update_model && !new_samples.is_empty() {
        let n_new = new_samples.len();
        task.samples.extend(new_samples);
        // Fine-tune on a replay buffer (new measurements plus a window of
        // history) so repeated tiny updates don't drift the model, with the
        // epoch count scaled to the amount of new data so tools with
        // different measurements-per-round apply the same total update
        // strength per measurement.
        let window = 192usize;
        let start = task.samples.len().saturating_sub(window);
        let epochs = ((opts.fine_tune_epochs * n_new).div_ceil(64)).max(1);
        fine_tune(model, &task.samples[start..], epochs, opts.fine_tune_lr);
        clock.charge_model_update(costs);
    }
    task.rounds += 1;
    proposer.note_measurement(&report);
    report
}

/// A point on a tuning curve: simulated seconds vs. network latency in ms.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CurvePoint {
    /// Simulated tuning time in seconds.
    pub time_s: f64,
    /// End-to-end network latency estimate at that time (ms).
    pub latency_ms: f64,
}

/// Result of tuning a whole network.
#[derive(Clone, Debug)]
pub struct NetworkTuneResult {
    /// Best-latency-so-far curve, one point per round.
    pub curve: Vec<CurvePoint>,
    /// Final per-task best latencies (ms).
    pub task_latencies: Vec<f64>,
    /// Final end-to-end latency (ms).
    pub final_latency_ms: f64,
    /// Per-round measurement reports, in execution order.
    pub round_reports: Vec<RoundReport>,
    /// Tasks that ended the run without a single successful measurement
    /// (their best latency is still infinite, so `final_latency_ms` is too).
    pub unmeasured_tasks: usize,
}

/// End-to-end latency = Σ weight × best task latency (+ launch gaps folded
/// into the per-kernel launch overhead already).
pub fn network_latency(tasks: &[SearchTask]) -> f64 {
    tasks
        .iter()
        .map(|t| t.weight as f64 * t.best_latency_ms)
        .sum()
}

/// Rounds of bounded immediate retry granted to a task that has never
/// produced a successful measurement, before [`select_next_task`] demotes it
/// below every healthy task.
pub const SEED_RETRY_ROUNDS: usize = 3;

/// One task's marginal-benefit score in the gradient-allocation scheduler:
/// its weighted latency headroom, decayed by rounds already spent and by
/// the fraction of measurement attempts it wastes on faults. Tasks still
/// without any measurement score below every healthy task (healthy scores
/// are positive), ordered by fewest rounds first.
///
/// This is the exact scoring expression [`select_next_task`] applies (same
/// floating-point operations, same order), extracted so higher layers —
/// the serving tier's cross-tenant job ranking — can rank *groups* of
/// tasks by the same yardstick the in-process scheduler uses.
pub fn task_priority(t: &SearchTask) -> f64 {
    if t.best_latency_ms.is_infinite() {
        -(t.rounds as f64)
    } else {
        let wasted = t.fault_stats.wasted_attempts() as f64;
        let fault_penalty = 1.0 + wasted / (t.measured.len() as f64 + 1.0);
        t.weight as f64 * t.best_latency_ms / (t.rounds as f64).sqrt() / fault_penalty
    }
}

/// The marginal benefit of granting one more round to a whole *job* (a set
/// of tasks tuned together): infinite while any task is still unseeded or
/// inside its bounded [`SEED_RETRY_ROUNDS`] retries — mirroring the
/// seeding precedence of [`select_next_task`] — and otherwise the best
/// [`task_priority`] across the job's tasks (the next round goes to the
/// highest-priority task, so that task's score *is* the round's payoff).
pub fn job_priority(tasks: &[SearchTask]) -> f64 {
    if tasks.iter().any(|t| {
        t.rounds == 0 || (t.best_latency_ms.is_infinite() && t.rounds < SEED_RETRY_ROUNDS)
    }) {
        return f64::INFINITY;
    }
    tasks.iter().map(task_priority).fold(f64::NEG_INFINITY, f64::max)
}

/// Ansor's task scheduler (simplified gradient allocation): after seeding
/// every task once, repeatedly picks the task with the largest weighted
/// latency headroom.
pub fn select_next_task(tasks: &[SearchTask]) -> usize {
    // First: any never-tuned task, in order.
    if let Some(i) = tasks.iter().position(|t| t.rounds == 0) {
        return i;
    }
    // A task whose incumbent is still infinite gets a few bounded retry
    // rounds (its first round may have lost every candidate to faults), but
    // only a few: an infinite `best_latency_ms` would otherwise make its
    // headroom score infinite and the scheduler would pick it forever,
    // starving every healthy task.
    if let Some(i) = tasks
        .iter()
        .position(|t| t.best_latency_ms.is_infinite() && t.rounds < SEED_RETRY_ROUNDS)
    {
        return i;
    }
    // Then: the task with the biggest expected payoff — see
    // [`task_priority`]. A fault-free task divides by exactly 1.0, keeping
    // the schedule byte-identical to the fault-unaware scheduler.
    let mut best = 0;
    let mut best_score = f64::NEG_INFINITY;
    for (i, t) in tasks.iter().enumerate() {
        let score = task_priority(t);
        if score > best_score {
            best_score = score;
            best = i;
        }
    }
    best
}

/// Tunes a whole network for `n_rounds` rounds (Algorithm 2), producing the
/// time-vs-latency curve.
#[allow(clippy::too_many_arguments)]
pub fn tune_network(
    tasks: &mut [SearchTask],
    proposer: &mut dyn Proposer,
    model: &mut Mlp,
    sim: &Simulator,
    clock: &mut TuningClock,
    costs: &ClockCosts,
    opts: &TuneOptions,
    n_rounds: usize,
    rng: &mut StdRng,
) -> NetworkTuneResult {
    tune_network_with_sink(tasks, proposer, model, sim, clock, costs, opts, n_rounds, rng, None)
}

/// [`tune_network`] with an optional [`MeasurementSink`] observing every
/// measurement across all tasks, in execution order.
#[allow(clippy::too_many_arguments)]
pub fn tune_network_with_sink(
    tasks: &mut [SearchTask],
    proposer: &mut dyn Proposer,
    model: &mut Mlp,
    sim: &Simulator,
    clock: &mut TuningClock,
    costs: &ClockCosts,
    opts: &TuneOptions,
    n_rounds: usize,
    rng: &mut StdRng,
    mut sink: Option<&mut (dyn MeasurementSink + '_)>,
) -> NetworkTuneResult {
    let mut curve = Vec::with_capacity(n_rounds);
    let mut round_reports = Vec::with_capacity(n_rounds);
    for _ in 0..n_rounds {
        let next = select_next_task(tasks);
        let report = tune_task_round_with_sink(
            &mut tasks[next],
            proposer,
            model,
            sim,
            clock,
            costs,
            opts,
            rng,
            sink.as_deref_mut(),
        );
        round_reports.push(report);
        if tasks.iter().all(|t| t.best_latency_ms.is_finite()) {
            curve.push(CurvePoint { time_s: clock.now_s(), latency_ms: network_latency(tasks) });
        }
    }
    let task_latencies = tasks.iter().map(|t| t.best_latency_ms).collect();
    NetworkTuneResult {
        final_latency_ms: network_latency(tasks),
        curve,
        task_latencies,
        round_reports,
        unmeasured_tasks: tasks.iter().filter(|t| t.best_latency_ms.is_infinite()).count(),
    }
}

/// A trivial proposer measuring random valid schedules (sanity baseline and
/// ablation).
#[derive(Debug, Default)]
pub struct RandomProposer;

impl Proposer for RandomProposer {
    fn name(&self) -> &'static str {
        "random"
    }

    fn propose(
        &mut self,
        task: &SearchTask,
        _model: &Mlp,
        n: usize,
        _clock: &mut TuningClock,
        _costs: &ClockCosts,
        rng: &mut StdRng,
    ) -> Vec<(usize, Vec<f64>)> {
        // Draw sketches from the non-quarantined set. With nothing
        // quarantined `active` is the identity list, so the RNG stream is
        // exactly the fault-free one.
        let active = task.active_sketches();
        (0..n)
            .map(|_| {
                let sk = active[rng.gen_range(0..active.len())];
                let vals =
                    felix_cost::random_schedule(&task.sketches[sk].program, rng, 64);
                (sk, vals)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use felix_graph::{Op, Subgraph};
    use felix_sim::DeviceConfig;
    use rand::SeedableRng;

    fn dense_task() -> Task {
        Task {
            subgraph: Subgraph { ops: vec![Op::Dense { m: 256, k: 512, n: 512 }] },
            weight: 2,
        }
    }

    fn quick_model() -> Mlp {
        let mut rng = StdRng::seed_from_u64(0);
        let ds = felix_cost::generate_dataset(&DeviceConfig::a5000(), 6, 12, 3);
        let mut mlp = Mlp::new(&mut rng);
        felix_cost::pretrain(
            &mut mlp,
            &ds.samples,
            &felix_cost::TrainConfig { epochs: 10, batch_size: 64, lr: 1e-3, seed: 0, ..Default::default() },
        );
        mlp
    }

    #[test]
    fn search_task_builds_sketches() {
        let sim = Simulator::new(DeviceConfig::a5000());
        let st = SearchTask::from_task(&dense_task(), &sim);
        assert_eq!(st.sketches.len(), 2);
        assert!(st.best_latency_ms.is_infinite());
    }

    #[test]
    fn random_rounds_improve_best() {
        let sim = Simulator::new(DeviceConfig::a5000());
        let mut task = SearchTask::from_task(&dense_task(), &sim);
        let mut model = quick_model();
        let mut clock = TuningClock::new();
        let costs = ClockCosts::default();
        let opts = TuneOptions { measurements_per_round: 8, update_model: false, ..Default::default() };
        let mut rng = StdRng::seed_from_u64(1);
        let mut proposer = RandomProposer;
        tune_task_round(&mut task, &mut proposer, &mut model, &sim, &mut clock, &costs, &opts, &mut rng);
        let after_one = task.best_latency_ms;
        assert!(after_one.is_finite());
        for _ in 0..5 {
            tune_task_round(&mut task, &mut proposer, &mut model, &sim, &mut clock, &costs, &opts, &mut rng);
        }
        assert!(task.best_latency_ms <= after_one);
        assert!(clock.now_s() > 0.0);
        assert!(task.measured.len() > 8);
    }

    #[test]
    fn record_tracks_incumbent_and_dedup() {
        let sim = Simulator::new(DeviceConfig::a5000());
        let mut task = SearchTask::from_task(&dense_task(), &sim);
        task.record(0, vec![1.0, 2.0], 5.0);
        task.record(0, vec![1.0, 3.0], 3.0);
        task.record(0, vec![1.0, 4.0], 9.0);
        assert_eq!(task.best_latency_ms, 3.0);
        assert!(task.already_measured(0, &[1.0, 2.0]));
        assert!(!task.already_measured(1, &[1.0, 2.0]));
    }

    #[test]
    fn scheduler_seeds_all_tasks_first() {
        let sim = Simulator::new(DeviceConfig::a5000());
        let mut tasks = vec![
            SearchTask::from_task(&dense_task(), &sim),
            SearchTask::from_task(&dense_task(), &sim),
        ];
        assert_eq!(select_next_task(&tasks), 0);
        tasks[0].rounds = 1;
        tasks[0].best_latency_ms = 1.0;
        assert_eq!(select_next_task(&tasks), 1);
        tasks[1].rounds = 1;
        tasks[1].best_latency_ms = 50.0;
        // Both seeded: pick the one with more headroom (task 1).
        assert_eq!(select_next_task(&tasks), 1);
    }

    #[test]
    fn network_latency_weights_tasks() {
        let sim = Simulator::new(DeviceConfig::a5000());
        let mut tasks = vec![SearchTask::from_task(&dense_task(), &sim)];
        tasks[0].best_latency_ms = 2.0;
        assert_eq!(network_latency(&tasks), 4.0); // weight 2
    }

    #[test]
    fn scheduler_does_not_starve_on_persistent_faults() {
        let sim = Simulator::new(DeviceConfig::a5000());
        let mut tasks = vec![
            SearchTask::from_task(&dense_task(), &sim),
            SearchTask::from_task(&dense_task(), &sim),
        ];
        // Task 0 was seeded but lost every candidate to faults: its
        // incumbent is still infinite. Task 1 is healthy.
        tasks[0].rounds = 1;
        tasks[0].fault_stats.build_errors = 16;
        tasks[1].rounds = 1;
        tasks[1].best_latency_ms = 5.0;
        let mut picks = [0usize; 2];
        for _ in 0..10 {
            let i = select_next_task(&tasks);
            picks[i] += 1;
            tasks[i].rounds += 1;
        }
        // An infinite incumbent must not win the headroom score forever:
        // the failing task gets its bounded retries, the healthy task gets
        // every remaining round.
        assert!(picks[1] > 0, "healthy task starved: picks {picks:?}");
        assert!(
            picks[0] <= SEED_RETRY_ROUNDS,
            "failing task must be retry-bounded: picks {picks:?}"
        );
    }

    #[test]
    fn scheduler_round_robins_when_every_task_is_failing() {
        let sim = Simulator::new(DeviceConfig::a5000());
        let mut tasks = vec![
            SearchTask::from_task(&dense_task(), &sim),
            SearchTask::from_task(&dense_task(), &sim),
        ];
        tasks[0].rounds = SEED_RETRY_ROUNDS;
        tasks[1].rounds = SEED_RETRY_ROUNDS;
        for _ in 0..6 {
            let i = select_next_task(&tasks);
            tasks[i].rounds += 1;
        }
        // Fewest-rounds-first keeps all-failing tasks within one round of
        // each other instead of hammering one.
        assert_eq!(tasks[0].rounds, tasks[1].rounds);
    }

    #[test]
    fn sink_observes_measurements_without_perturbing_the_search() {
        #[derive(Default)]
        struct Capture(Vec<(String, usize, Result<f64, FaultKind>, f64)>);
        impl MeasurementSink for Capture {
            fn record(&mut self, event: &MeasurementEvent<'_>) {
                self.0.push((
                    event.workload_key.to_string(),
                    event.sketch,
                    event.outcome,
                    event.time_s,
                ));
            }
        }

        let sim = Simulator::new(DeviceConfig::a5000());
        let mut model = quick_model();
        let mut clock = TuningClock::new();
        let costs = ClockCosts::default();
        let opts = TuneOptions { measurements_per_round: 6, update_model: false, ..Default::default() };

        let mut with_sink = SearchTask::from_task(&dense_task(), &sim);
        let mut capture = Capture::default();
        let mut rng = StdRng::seed_from_u64(3);
        let report = tune_task_round_with_sink(
            &mut with_sink, &mut RandomProposer, &mut model, &sim, &mut clock, &costs,
            &opts, &mut rng, Some(&mut capture),
        );
        assert_eq!(capture.0.len(), report.measured + report.failed);
        assert!(capture.0.iter().all(|(wk, _, _, _)| wk == &with_sink.workload_key));
        // Events arrive in measurement order with nondecreasing clock times.
        assert!(capture.0.windows(2).all(|w| w[0].3 <= w[1].3));

        // The identical run without a sink produces the identical state.
        let mut without = SearchTask::from_task(&dense_task(), &sim);
        let mut clock2 = TuningClock::new();
        let mut rng2 = StdRng::seed_from_u64(3);
        tune_task_round(
            &mut without, &mut RandomProposer, &mut model, &sim, &mut clock2, &costs,
            &opts, &mut rng2,
        );
        assert_eq!(without.measured, with_sink.measured);
        assert_eq!(without.best_latency_ms.to_bits(), with_sink.best_latency_ms.to_bits());
        assert_eq!(clock2.now_s().to_bits(), clock.now_s().to_bits());
    }

    #[test]
    fn sketch_mode_labels_round_trip() {
        for mode in [SketchMode::Gradient, SketchMode::ClippedGradient, SketchMode::Evolutionary] {
            assert_eq!(SketchMode::from_label(mode.label()), Some(mode));
        }
        assert_eq!(SketchMode::from_label("warp-drive"), None);
    }

    #[test]
    fn apply_health_walks_the_degradation_ladder() {
        let sim = Simulator::new(DeviceConfig::a5000());
        let mut task = SearchTask::from_task(&dense_task(), &sim);
        assert!(task.sketch_modes().iter().all(|&m| m == SketchMode::Gradient));

        // Clean report: no change.
        assert!(!task.apply_health(&HealthReport::default()));

        // Exhausted restart budget: one rung down (GD -> clipped GD).
        let exhausted = HealthReport { exhausted_sketches: vec![0], ..Default::default() };
        assert!(task.apply_health(&exhausted));
        assert_eq!(task.sketch_mode(0), SketchMode::ClippedGradient);
        assert_eq!(task.sketch_mode(1), SketchMode::Gradient);

        // Exhausted again while clipped: bottom rung (evolutionary).
        assert!(task.apply_health(&exhausted));
        assert_eq!(task.sketch_mode(0), SketchMode::Evolutionary);

        // A panic jumps straight to evolutionary regardless of rung.
        let poisoned = HealthReport { poisoned_sketches: vec![1], ..Default::default() };
        assert!(task.apply_health(&poisoned));
        assert_eq!(task.sketch_mode(1), SketchMode::Evolutionary);

        // Recovery only lifts the clipped rung; evolutionary is sticky.
        let recovered = HealthReport { recovered_sketches: vec![0, 1], ..Default::default() };
        assert!(!task.apply_health(&recovered));
        assert_eq!(task.sketch_mode(0), SketchMode::Evolutionary);
        assert_eq!(task.sketch_mode(1), SketchMode::Evolutionary);

        // Recovery from clipped mode steps back up to full gradient.
        task.set_sketch_modes(&[SketchMode::ClippedGradient, SketchMode::Evolutionary]);
        assert!(task.apply_health(&HealthReport {
            recovered_sketches: vec![0],
            ..Default::default()
        }));
        assert_eq!(task.sketch_mode(0), SketchMode::Gradient);
    }

    #[test]
    fn health_report_merge_and_cleanliness() {
        let mut a = HealthReport { seed_restarts: 2, exhausted_sketches: vec![1], ..Default::default() };
        let b = HealthReport {
            seed_restarts: 1,
            nonfinite_events: 4,
            exhausted_sketches: vec![0, 1],
            poisoned_sketches: vec![0],
            ..Default::default()
        };
        assert!(HealthReport::default().is_clean());
        assert!(!a.is_clean());
        a.merge(&b);
        assert_eq!(a.seed_restarts, 3);
        assert_eq!(a.nonfinite_events, 4);
        assert_eq!(a.exhausted_sketches, vec![0, 1], "sketch lists union");
        assert_eq!(a.degraded_sketches(), vec![0, 1]);
    }

    #[test]
    fn degraded_sketch_modes_survive_snapshot_restore() {
        let sim = Simulator::new(DeviceConfig::a5000());
        let mut task = SearchTask::from_task(&dense_task(), &sim);
        task.apply_health(&HealthReport { poisoned_sketches: vec![1], ..Default::default() });
        let snap = task.snapshot();
        let mut fresh = SearchTask::from_task(&dense_task(), &sim);
        fresh.restore(snap);
        assert_eq!(fresh.sketch_modes(), task.sketch_modes());
        assert_eq!(fresh.sketch_mode(1), SketchMode::Evolutionary);
    }

    #[test]
    fn snapshot_restore_round_trips_search_state() {
        let sim = Simulator::new(DeviceConfig::a5000());
        let mut task = SearchTask::from_task(&dense_task(), &sim);
        let mut model = quick_model();
        let mut clock = TuningClock::new();
        let costs = ClockCosts::default();
        let opts = TuneOptions { measurements_per_round: 6, ..Default::default() };
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..2 {
            tune_task_round(
                &mut task, &mut RandomProposer, &mut model, &sim, &mut clock, &costs,
                &opts, &mut rng,
            );
        }
        task.record_failure(0, vec![999.0, 999.0], FaultKind::Timeout);

        let snap = task.snapshot();
        let mut fresh = SearchTask::from_task(&dense_task(), &sim);
        fresh.restore(snap);
        assert_eq!(fresh.measured, task.measured);
        assert_eq!(fresh.failed, task.failed);
        assert_eq!(fresh.best_latency_ms.to_bits(), task.best_latency_ms.to_bits());
        assert_eq!(fresh.best_schedule, task.best_schedule);
        assert_eq!(fresh.fault_stats, task.fault_stats);
        assert_eq!(fresh.rounds, task.rounds);
        assert!(fresh.already_measured(0, &[999.0, 999.0]), "dedup set rebuilt");
        // Replay-buffer samples rebuild bit-exactly from the measurements.
        assert_eq!(fresh.samples.len(), task.samples.len());
        for (a, b) in fresh.samples.iter().zip(&task.samples) {
            assert_eq!(a.score.to_bits(), b.score.to_bits());
            assert_eq!(
                a.logfeats.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                b.logfeats.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            );
        }
    }
}
