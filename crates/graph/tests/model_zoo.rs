//! Structural checks of the model zoo against the published architectures.

use felix_graph::{models, partition, EwKind, Op};

#[test]
fn resnet50_has_53_convolutions() {
    // 1 stem + 16 bottlenecks x 3 + 4 projection shortcuts = 53.
    let g = models::resnet50(1);
    let convs = g
        .nodes
        .iter()
        .filter(|n| matches!(n.op, Op::Conv2d { .. }))
        .count();
    assert_eq!(convs, 53);
    // Exactly one max-pool, one global pool, one classifier.
    assert_eq!(g.nodes.iter().filter(|n| matches!(n.op, Op::MaxPool2d { .. })).count(), 1);
    assert_eq!(g.nodes.iter().filter(|n| matches!(n.op, Op::GlobalAvgPool { .. })).count(), 1);
    assert_eq!(g.nodes.iter().filter(|n| matches!(n.op, Op::Dense { .. })).count(), 1);
}

#[test]
fn resnet50_residual_adds_match_block_count() {
    let g = models::resnet50(1);
    let adds = g
        .nodes
        .iter()
        .filter(|n| matches!(&n.op, Op::Elementwise { kind: EwKind::Add, .. }))
        .count();
    assert_eq!(adds, 16, "one residual add per bottleneck");
}

#[test]
fn mobilenet_v2_depthwise_structure() {
    let g = models::mobilenet_v2(1);
    let dw = g
        .nodes
        .iter()
        .filter(|n| matches!(&n.op, Op::Conv2d { groups, .. } if *groups > 1))
        .count();
    assert_eq!(dw, 17, "17 inverted-residual blocks, one depthwise each");
    // Final feature size before pooling is 7x7x1280.
    let head = g
        .nodes
        .iter()
        .filter(|n| matches!(&n.op, Op::Conv2d { k: 1280, .. }))
        .count();
    assert_eq!(head, 1);
}

#[test]
fn vit_b32_block_counts() {
    let g = models::vit_b32(1);
    let softmaxes = g.nodes.iter().filter(|n| matches!(n.op, Op::Softmax { .. })).count();
    assert_eq!(softmaxes, 12, "one attention softmax per encoder block");
    let bmms = g.nodes.iter().filter(|n| matches!(n.op, Op::BatchMatmul { .. })).count();
    assert_eq!(bmms, 24, "scores + context per block");
    // qkv + proj + 2 MLP per block, plus the classifier head.
    let denses = g.nodes.iter().filter(|n| matches!(n.op, Op::Dense { .. })).count();
    assert_eq!(denses, 12 * 4 + 1);
}

#[test]
fn llama_7b_shapes() {
    let g = models::llama(1);
    // Gated MLP: gate/up are 4096 -> 11008, down is 11008 -> 4096.
    assert!(g.nodes.iter().any(|n| matches!(n.op, Op::Dense { k: 4096, n: 11008, .. })));
    assert!(g.nodes.iter().any(|n| matches!(n.op, Op::Dense { k: 11008, n: 4096, .. })));
    // LM head to the 32000-token vocabulary.
    assert!(g.nodes.iter().any(|n| matches!(n.op, Op::Dense { n: 32000, .. })));
    // Attention runs over 32 heads x 100 tokens.
    assert!(g
        .nodes
        .iter()
        .any(|n| matches!(n.op, Op::BatchMatmul { b: 32, m: 100, .. })));
}

#[test]
fn dedup_weights_account_for_every_anchor() {
    for g in models::all_models(1) {
        let tasks = partition(&g);
        let total_weight: usize = tasks.iter().map(|t| t.weight).sum();
        let standalone_subgraphs = {
            // Count anchors + element-wise ops that could not fuse.
            let consumers = g.consumer_counts();
            g.nodes
                .iter()
                .filter(|n| {
                    n.op.is_anchor()
                        || n.inputs.first().is_none_or(|p| consumers[p.0 as usize] > 1)
                })
                .count()
        };
        assert!(
            total_weight <= g.nodes.len() && total_weight >= standalone_subgraphs / 2,
            "{}: weight {} vs nodes {}",
            g.name,
            total_weight,
            g.nodes.len()
        );
    }
}

#[test]
fn batch_16_preserves_task_structure() {
    // Batch scaling changes shapes, not the number of distinct tasks (much).
    let t1 = partition(&models::resnet50(1)).len();
    let t16 = partition(&models::resnet50(16)).len();
    assert_eq!(t1, t16);
}

#[test]
fn r3d18_conv3d_count() {
    let g = models::r3d18(1);
    let convs = g.nodes.iter().filter(|n| matches!(n.op, Op::Conv3d { .. })).count();
    // stem + 8 blocks x 2 + 3 downsample projections = 20.
    assert_eq!(convs, 20);
}

#[test]
fn dcgan_channel_progression() {
    let g = models::dcgan(1);
    let ks: Vec<i64> = g
        .nodes
        .iter()
        .filter_map(|n| match n.op {
            Op::ConvTranspose2d { k, .. } => Some(k),
            _ => None,
        })
        .collect();
    assert_eq!(ks, vec![512, 256, 128, 64, 3]);
}
