//! The model zoo: builders for the six evaluation networks of the paper
//! (§5): ResNet-50, MobileNet-v2, R3D-18, DCGAN, ViT-B/32, and LLaMA.
//!
//! Each builder returns a [`Graph`] of operator nodes with realistic layer
//! shapes; the `batch` parameter scales the leading dimension as in §6.4.
//! Two modelling simplifications (documented in DESIGN.md): the R3D-18 stem
//! uses a cubic 3³ kernel with uniform stride, and LLaMA's rotary embedding
//! is folded into the element-wise epilogues.

use crate::{EwKind, Graph, NodeId, Op};

fn ew(g: &mut Graph, kind: EwKind, shape: Vec<i64>, inputs: Vec<NodeId>) -> NodeId {
    g.push(Op::Elementwise { kind, shape }, inputs)
}

#[allow(clippy::too_many_arguments)]
fn conv_bn_act(
    g: &mut Graph,
    input: Option<NodeId>,
    n: i64,
    c: i64,
    k: i64,
    h: i64,
    r: i64,
    stride: i64,
    pad: i64,
    groups: i64,
    act: Option<EwKind>,
) -> (NodeId, i64) {
    let conv = Op::Conv2d { n, c, k, h, r, stride, pad, groups };
    let out_shape = conv.out_shape();
    let oh = out_shape[2];
    let id = g.push(conv, input.into_iter().collect());
    let bn = ew(g, EwKind::BatchNorm, out_shape.clone(), vec![id]);
    let last = match act {
        Some(a) => ew(g, a, out_shape, vec![bn]),
        None => bn,
    };
    (last, oh)
}

/// ResNet-50 for ImageNet at 256×256 input (the paper's Fig. 5 shape).
pub fn resnet50(batch: i64) -> Graph {
    let mut g = Graph::new(format!("resnet50-b{batch}"));
    let n = batch;
    // Stem: 7x7/2 conv, BN, ReLU, 3x3/2 max-pool.
    let (stem, h) = conv_bn_act(&mut g, None, n, 3, 64, 256, 7, 2, 3, 1, Some(EwKind::Relu));
    let pool = g.push(Op::MaxPool2d { n, c: 64, h, r: 3, stride: 2, pad: 1 }, vec![stem]);
    let mut h = (h + 2 - 3) / 2 + 1;
    let mut prev = pool;
    let mut in_ch = 64i64;
    let stages: [(i64, i64, usize); 4] =
        [(64, 256, 3), (128, 512, 4), (256, 1024, 6), (512, 2048, 3)];
    for (si, (mid, out, blocks)) in stages.iter().enumerate() {
        for b in 0..*blocks {
            let stride = if si > 0 && b == 0 { 2 } else { 1 };
            // Bottleneck: 1x1 -> 3x3(stride) -> 1x1, with projection shortcut.
            let (c1, _) = conv_bn_act(&mut g, Some(prev), n, in_ch, *mid, h, 1, 1, 0, 1, Some(EwKind::Relu));
            let (c2, oh) = conv_bn_act(&mut g, Some(c1), n, *mid, *mid, h, 3, stride, 1, 1, Some(EwKind::Relu));
            let (c3, _) = conv_bn_act(&mut g, Some(c2), n, *mid, *out, oh, 1, 1, 0, 1, None);
            let shortcut = if in_ch != *out || stride != 1 {
                let (sc, _) =
                    conv_bn_act(&mut g, Some(prev), n, in_ch, *out, h, 1, stride, 0, 1, None);
                sc
            } else {
                prev
            };
            let add = ew(&mut g, EwKind::Add, vec![n, *out, oh, oh], vec![c3, shortcut]);
            prev = ew(&mut g, EwKind::Relu, vec![n, *out, oh, oh], vec![add]);
            h = oh;
            in_ch = *out;
        }
    }
    let gap = g.push(Op::GlobalAvgPool { n, c: 2048, h }, vec![prev]);
    let fc = g.push(Op::Dense { m: n, k: 2048, n: 1000 }, vec![gap]);
    ew(&mut g, EwKind::BiasAdd, vec![n, 1000], vec![fc]);
    g
}

/// MobileNet-v2 for ImageNet at 224×224 input.
pub fn mobilenet_v2(batch: i64) -> Graph {
    let mut g = Graph::new(format!("mobilenet_v2-b{batch}"));
    let n = batch;
    let (stem, mut h) =
        conv_bn_act(&mut g, None, n, 3, 32, 224, 3, 2, 1, 1, Some(EwKind::Relu6));
    let mut prev = stem;
    let mut in_ch = 32i64;
    // (expansion t, output channels c, repeats n, first stride s)
    let cfgs: [(i64, i64, usize, i64); 7] = [
        (1, 16, 1, 1),
        (6, 24, 2, 2),
        (6, 32, 3, 2),
        (6, 64, 4, 2),
        (6, 96, 3, 1),
        (6, 160, 3, 2),
        (6, 320, 1, 1),
    ];
    for (t, c_out, reps, first_stride) in cfgs {
        for rep in 0..reps {
            let stride = if rep == 0 { first_stride } else { 1 };
            let exp_ch = in_ch * t;
            let mut x = prev;
            let mut hh = h;
            if t != 1 {
                let (e, oh) =
                    conv_bn_act(&mut g, Some(prev), n, in_ch, exp_ch, h, 1, 1, 0, 1, Some(EwKind::Relu6));
                x = e;
                hh = oh;
            }
            let (dw, oh) = conv_bn_act(
                &mut g, Some(x), n, exp_ch, exp_ch, hh, 3, stride, 1, exp_ch, Some(EwKind::Relu6),
            );
            let (proj, oh2) =
                conv_bn_act(&mut g, Some(dw), n, exp_ch, c_out, oh, 1, 1, 0, 1, None);
            prev = if stride == 1 && in_ch == c_out {
                ew(&mut g, EwKind::Add, vec![n, c_out, oh2, oh2], vec![proj, prev])
            } else {
                proj
            };
            h = oh2;
            in_ch = c_out;
        }
    }
    let (head, h) =
        conv_bn_act(&mut g, Some(prev), n, 320, 1280, h, 1, 1, 0, 1, Some(EwKind::Relu6));
    let gap = g.push(Op::GlobalAvgPool { n, c: 1280, h }, vec![head]);
    let fc = g.push(Op::Dense { m: n, k: 1280, n: 1000 }, vec![gap]);
    ew(&mut g, EwKind::BiasAdd, vec![n, 1000], vec![fc]);
    g
}

/// R3D-18 (3-D ResNet) for action recognition on 16×112×112 clips.
pub fn r3d18(batch: i64) -> Graph {
    let mut g = Graph::new(format!("r3d18-b{batch}"));
    let n = batch;
    let conv3 = |g: &mut Graph, input: Option<NodeId>, c: i64, k: i64, d: i64, h: i64, stride: i64, act: bool| {
        let op = Op::Conv3d { n, c, k, d, h, r: 3, stride, pad: 1 };
        let shape = op.out_shape();
        let id = g.push(op, input.into_iter().collect());
        let bn = ew(g, EwKind::BatchNorm, shape.clone(), vec![id]);
        let last = if act { ew(g, EwKind::Relu, shape.clone(), vec![bn]) } else { bn };
        (last, shape[2], shape[3])
    };
    // Stem (modelled as a cubic 3^3 conv with spatial stride 2).
    let (stem, mut d, mut h) = conv3(&mut g, None, 3, 64, 16, 112, 2, true);
    let mut prev = stem;
    let mut in_ch = 64i64;
    for (li, ch) in [64i64, 128, 256, 512].iter().enumerate() {
        for b in 0..2usize {
            let stride = if li > 0 && b == 0 { 2 } else { 1 };
            let (c1, d1, h1) = conv3(&mut g, Some(prev), in_ch, *ch, d, h, stride, true);
            let (c2, d2, h2) = conv3(&mut g, Some(c1), *ch, *ch, d1, h1, 1, false);
            let shortcut = if in_ch != *ch || stride != 1 {
                let op = Op::Conv3d { n, c: in_ch, k: *ch, d, h, r: 1, stride, pad: 0 };
                let shape = op.out_shape();
                let sc = g.push(op, vec![prev]);
                ew(&mut g, EwKind::BatchNorm, shape, vec![sc])
            } else {
                prev
            };
            let add = ew(&mut g, EwKind::Add, vec![n, *ch, d2, h2, h2], vec![c2, shortcut]);
            prev = ew(&mut g, EwKind::Relu, vec![n, *ch, d2, h2, h2], vec![add]);
            d = d2;
            h = h2;
            in_ch = *ch;
        }
    }
    // Global average pool over (d, h, w) then classifier, modelled as a
    // global pool over the flattened spatial volume.
    let gap = g.push(Op::GlobalAvgPool { n, c: 512, h: (d * h * h).max(1).min(h * h) }, vec![prev]);
    let fc = g.push(Op::Dense { m: n, k: 512, n: 400 }, vec![gap]);
    ew(&mut g, EwKind::BiasAdd, vec![n, 400], vec![fc]);
    g
}

/// DCGAN generator: 100-d latent → 64×64 RGB image.
pub fn dcgan(batch: i64) -> Graph {
    let mut g = Graph::new(format!("dcgan-b{batch}"));
    let n = batch;
    let tconv = |g: &mut Graph, input: Option<NodeId>, c: i64, k: i64, h: i64, r: i64, stride: i64, pad: i64, act: Option<EwKind>| {
        let op = Op::ConvTranspose2d { n, c, k, h, r, stride, pad };
        let shape = op.out_shape();
        let oh = shape[2];
        let id = g.push(op, input.into_iter().collect());
        let out = match act {
            Some(EwKind::Tanh) => ew(g, EwKind::Tanh, shape, vec![id]),
            Some(a) => {
                let bn = ew(g, EwKind::BatchNorm, shape.clone(), vec![id]);
                ew(g, a, shape, vec![bn])
            }
            None => id,
        };
        (out, oh)
    };
    let (t1, h) = tconv(&mut g, None, 100, 512, 1, 4, 1, 0, Some(EwKind::Relu));
    let (t2, h) = tconv(&mut g, Some(t1), 512, 256, h, 4, 2, 1, Some(EwKind::Relu));
    let (t3, h) = tconv(&mut g, Some(t2), 256, 128, h, 4, 2, 1, Some(EwKind::Relu));
    let (t4, h) = tconv(&mut g, Some(t3), 128, 64, h, 4, 2, 1, Some(EwKind::Relu));
    let (_t5, _h) = tconv(&mut g, Some(t4), 64, 3, h, 4, 2, 1, Some(EwKind::Tanh));
    g
}

/// One transformer encoder/decoder block shared by ViT and LLaMA.
#[allow(clippy::too_many_arguments)]
fn transformer_block(
    g: &mut Graph,
    prev: NodeId,
    seq: i64,
    hidden: i64,
    heads: i64,
    ffn: i64,
    batch: i64,
    gated_mlp: bool,
    act: EwKind,
) -> NodeId {
    let m = batch * seq;
    let head_dim = hidden / heads;
    let b = batch * heads;
    let ln1 = g.push(Op::LayerNorm { rows: m, cols: hidden }, vec![prev]);
    let qkv = g.push(Op::Dense { m, k: hidden, n: 3 * hidden }, vec![ln1]);
    let scores = g.push(Op::BatchMatmul { b, m: seq, k: head_dim, n: seq }, vec![qkv]);
    let sm = g.push(Op::Softmax { rows: b * seq, cols: seq }, vec![scores]);
    let ctx = g.push(Op::BatchMatmul { b, m: seq, k: seq, n: head_dim }, vec![sm, qkv]);
    let proj = g.push(Op::Dense { m, k: hidden, n: hidden }, vec![ctx]);
    let add1 = ew(g, EwKind::Add, vec![m, hidden], vec![proj, prev]);
    let ln2 = g.push(Op::LayerNorm { rows: m, cols: hidden }, vec![add1]);
    let mlp_out = if gated_mlp {
        // LLaMA: gate & up projections, SiLU gate, elementwise product, down.
        let gate = g.push(Op::Dense { m, k: hidden, n: ffn }, vec![ln2]);
        let up = g.push(Op::Dense { m, k: hidden, n: ffn }, vec![ln2]);
        let silu = ew(g, act, vec![m, ffn], vec![gate]);
        let prod = ew(g, EwKind::Mul, vec![m, ffn], vec![silu, up]);
        g.push(Op::Dense { m, k: ffn, n: hidden }, vec![prod])
    } else {
        let fc1 = g.push(Op::Dense { m, k: hidden, n: ffn }, vec![ln2]);
        let a = ew(g, act, vec![m, ffn], vec![fc1]);
        g.push(Op::Dense { m, k: ffn, n: hidden }, vec![a])
    };
    ew(g, EwKind::Add, vec![m, hidden], vec![mlp_out, add1])
}

/// ViT-B/32 for ImageNet at 224×224 input (49 patches + class token ≈ 50).
pub fn vit_b32(batch: i64) -> Graph {
    let mut g = Graph::new(format!("vit_b32-b{batch}"));
    let n = batch;
    let (hidden, heads, ffn, layers, seq) = (768i64, 12i64, 3072i64, 12usize, 50i64);
    // Patch embedding: 32x32/32 conv.
    let patch = g.push(
        Op::Conv2d { n, c: 3, k: hidden, h: 224, r: 32, stride: 32, pad: 0, groups: 1 },
        vec![],
    );
    let mut prev = patch;
    for _ in 0..layers {
        prev = transformer_block(&mut g, prev, seq, hidden, heads, ffn, n, false, EwKind::Gelu);
    }
    let ln = g.push(Op::LayerNorm { rows: n * seq, cols: hidden }, vec![prev]);
    let fc = g.push(Op::Dense { m: n, k: hidden, n: 1000 }, vec![ln]);
    ew(&mut g, EwKind::BiasAdd, vec![n, 1000], vec![fc]);
    g
}

/// LLaMA-7B prefill over a 100-token prompt (the paper's setting).
pub fn llama(batch: i64) -> Graph {
    llama_with_config(batch, 100, 4096, 32, 11008, 32)
}

/// LLaMA with an explicit configuration (for scaled-down testing).
pub fn llama_with_config(
    batch: i64,
    seq: i64,
    hidden: i64,
    heads: i64,
    ffn: i64,
    layers: usize,
) -> Graph {
    let mut g = Graph::new(format!("llama-b{batch}"));
    // Token embedding lookup is memory-bound gather; modelled element-wise.
    let embed = ew(&mut g, EwKind::Add, vec![batch * seq, hidden], vec![]);
    let mut prev = embed;
    for _ in 0..layers {
        prev = transformer_block(&mut g, prev, seq, hidden, heads, ffn, batch, true, EwKind::Silu);
    }
    let ln = g.push(Op::LayerNorm { rows: batch * seq, cols: hidden }, vec![prev]);
    let _lm_head = g.push(Op::Dense { m: batch * seq, k: hidden, n: 32000 }, vec![ln]);
    g
}

/// All six evaluation networks at a batch size.
pub fn all_models(batch: i64) -> Vec<Graph> {
    vec![
        resnet50(batch),
        mobilenet_v2(batch),
        r3d18(batch),
        dcgan(batch),
        vit_b32(batch),
        llama(batch),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition;

    #[test]
    fn resnet50_flops_in_expected_range() {
        // ResNet-50 at 224 is ~4.1 GMACs = 8.2 GFLOPs/image; at 256 input
        // roughly (64/56)^2 larger ≈ 10.7 GFLOPs. Accept a generous band.
        let g = resnet50(1);
        let gf = g.total_flops() / 1e9;
        assert!((8.0..14.0).contains(&gf), "resnet50 flops {gf} GF");
    }

    #[test]
    fn mobilenet_is_much_cheaper_than_resnet() {
        let r = resnet50(1).total_flops();
        let m = mobilenet_v2(1).total_flops();
        assert!(m * 5.0 < r, "mobilenet {m} vs resnet {r}");
    }

    #[test]
    fn r3d18_dominated_by_conv3d() {
        let g = r3d18(1);
        let conv3d: f64 = g
            .nodes
            .iter()
            .filter(|n| matches!(n.op, Op::Conv3d { .. }))
            .map(|n| n.op.flops())
            .sum();
        assert!(conv3d / g.total_flops() > 0.99, "paper: >99% of R3D-18 is conv3d");
    }

    #[test]
    fn dcgan_structure() {
        let g = dcgan(1);
        let tconvs = g
            .nodes
            .iter()
            .filter(|n| matches!(n.op, Op::ConvTranspose2d { .. }))
            .count();
        assert_eq!(tconvs, 5);
        // Final output is 3x64x64.
        let last_tconv = g
            .nodes
            .iter()
            .rev()
            .find(|n| matches!(n.op, Op::ConvTranspose2d { .. }))
            .unwrap();
        assert_eq!(last_tconv.op.out_shape(), vec![1, 3, 64, 64]);
    }

    #[test]
    fn vit_has_attention_ops() {
        let g = vit_b32(1);
        assert!(g.nodes.iter().any(|n| matches!(n.op, Op::BatchMatmul { .. })));
        assert!(g.nodes.iter().any(|n| matches!(n.op, Op::Softmax { .. })));
        let gf = g.total_flops() / 1e9;
        // ViT-B/32 ≈ 4.4 GMACs = 8.8 GFLOPs.
        assert!((7.0..11.0).contains(&gf), "vit flops {gf} GF");
    }

    #[test]
    fn llama_prefill_flops() {
        // ~2 * 6.7e9 params * 100 tokens ≈ 1.3 TFLOPs.
        let g = llama(1);
        let tf = g.total_flops() / 1e12;
        assert!((0.8..2.5).contains(&tf), "llama flops {tf} TF");
    }

    #[test]
    fn networks_dedupe_into_reasonable_task_counts() {
        for g in all_models(1) {
            let tasks = partition(&g);
            let n = tasks.len();
            assert!(
                (4..=64).contains(&n),
                "{}: {} tasks (nodes {})",
                g.name,
                n,
                g.nodes.len()
            );
            let total_weight: usize = tasks.iter().map(|t| t.weight).sum();
            assert!(total_weight >= g.nodes.iter().filter(|x| x.op.is_anchor()).count());
        }
    }

    #[test]
    fn batch_scales_flops_linearly() {
        let f1 = resnet50(1).total_flops();
        let f16 = resnet50(16).total_flops();
        let ratio = f16 / f1;
        assert!((15.0..17.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn llama_scaled_config_builds() {
        let g = llama_with_config(1, 100, 512, 8, 1376, 4);
        assert!(g.total_flops() > 0.0);
        let tasks = partition(&g);
        assert!(tasks.len() >= 5);
    }
}
