//! Graph partitioning into fused subgraphs and deduplicated tuning tasks
//! (paper §3.1).
//!
//! The partitioner fuses element-wise operators into their producing anchor
//! operator in the fixed patterns TVM/Ansor use (e.g. Conv→BN→ReLU becomes
//! one Conv-BN-ReLU subgraph), then deduplicates identical subgraphs into
//! weighted [`Task`]s: a ResNet has dozens of identical Conv-ReLU layers but
//! only a handful of distinct tuning tasks.

use crate::{Graph, Op};

/// A fused subgraph: one anchor operator plus its fused element-wise
/// epilogue chain.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct Subgraph {
    /// The anchor operator (first) followed by fused epilogues in order.
    pub ops: Vec<Op>,
}

impl Subgraph {
    /// The anchor operator.
    pub fn anchor(&self) -> &Op {
        &self.ops[0]
    }

    /// The fused epilogue operators.
    pub fn epilogues(&self) -> &[Op] {
        &self.ops[1..]
    }

    /// Stable key identifying the workload (used for deduplication).
    pub fn workload_key(&self) -> String {
        format!("{:?}", self.ops)
    }

    /// Total floating-point work of the subgraph.
    pub fn flops(&self) -> f64 {
        self.ops.iter().map(|o| o.flops()).sum()
    }

    /// A short display name.
    pub fn name(&self) -> String {
        let mut s = self.anchor().short_name().to_string();
        for _ in self.epilogues() {
            s.push_str("+ew");
        }
        let shape = self.anchor().out_shape();
        s.push_str(&format!("{shape:?}"));
        s
    }
}

/// A deduplicated tuning task: a subgraph and how many times it occurs.
#[derive(Clone, Debug)]
pub struct Task {
    /// The fused subgraph.
    pub subgraph: Subgraph,
    /// Occurrences in the source graph (the task's latency counts this many
    /// times toward network latency).
    pub weight: usize,
}

/// Partitions a graph into fused subgraphs and deduplicates them into tasks.
///
/// Fusion rule (greedy, as in Ansor): an element-wise node fuses into the
/// subgraph of its first input when that producer has exactly one consumer;
/// otherwise it becomes its own (element-wise-anchored) subgraph.
pub fn partition(graph: &Graph) -> Vec<Task> {
    let consumers = graph.consumer_counts();
    // group[i] = index into `subgraphs` the node belongs to.
    let mut group: Vec<Option<usize>> = vec![None; graph.nodes.len()];
    let mut subgraphs: Vec<Vec<usize>> = Vec::new();

    for (i, node) in graph.nodes.iter().enumerate() {
        let fuse_into = if node.op.is_anchor() {
            None
        } else {
            node.inputs.first().and_then(|p| {
                let p = p.0 as usize;
                // Producer must be single-consumer and already grouped, and
                // the epilogue must preserve the producer's output shape.
                if consumers[p] == 1
                    && group[p].is_some()
                    && graph.nodes[p].op.out_shape().iter().product::<i64>()
                        == node.op.out_shape().iter().product::<i64>()
                {
                    group[p]
                } else {
                    None
                }
            })
        };
        match fuse_into {
            Some(g) => {
                subgraphs[g].push(i);
                group[i] = Some(g);
            }
            None => {
                subgraphs.push(vec![i]);
                group[i] = Some(subgraphs.len() - 1);
            }
        }
    }

    // Deduplicate by workload key, preserving first-seen order.
    let mut tasks: Vec<Task> = Vec::new();
    let mut index: std::collections::HashMap<String, usize> = std::collections::HashMap::new();
    for sg in subgraphs {
        let ops: Vec<Op> = sg.iter().map(|&i| graph.nodes[i].op.clone()).collect();
        let subgraph = Subgraph { ops };
        let key = subgraph.workload_key();
        match index.get(&key) {
            Some(&t) => tasks[t].weight += 1,
            None => {
                index.insert(key, tasks.len());
                tasks.push(Task { subgraph, weight: 1 });
            }
        }
    }
    tasks
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::EwKind;

    fn conv(k: i64) -> Op {
        Op::Conv2d { n: 1, c: 64, k, h: 56, r: 3, stride: 1, pad: 1, groups: 1 }
    }

    fn relu(shape: Vec<i64>) -> Op {
        Op::Elementwise { kind: EwKind::Relu, shape }
    }

    #[test]
    fn conv_relu_fuses() {
        let mut g = Graph::new("t");
        let c = g.push(conv(64), vec![]);
        g.push(relu(vec![1, 64, 56, 56]), vec![c]);
        let tasks = partition(&g);
        assert_eq!(tasks.len(), 1);
        assert_eq!(tasks[0].subgraph.ops.len(), 2);
        assert_eq!(tasks[0].weight, 1);
    }

    #[test]
    fn repeated_layers_dedupe_with_weight() {
        let mut g = Graph::new("t");
        let mut prev = None;
        for _ in 0..5 {
            let c = g.push(conv(64), prev.into_iter().collect());
            let r = g.push(relu(vec![1, 64, 56, 56]), vec![c]);
            prev = Some(r);
        }
        let tasks = partition(&g);
        assert_eq!(tasks.len(), 1, "identical conv+relu dedupes");
        assert_eq!(tasks[0].weight, 5);
    }

    #[test]
    fn multi_consumer_blocks_fusion() {
        // conv feeds both a relu and a residual add: relu cannot fuse.
        let mut g = Graph::new("t");
        let c = g.push(conv(64), vec![]);
        let r = g.push(relu(vec![1, 64, 56, 56]), vec![c]);
        g.push(Op::Elementwise { kind: EwKind::Add, shape: vec![1, 64, 56, 56] }, vec![c, r]);
        let tasks = partition(&g);
        // conv alone, relu alone, add fused into relu's group? add's first
        // input is conv (2 consumers) -> standalone. 3 tasks.
        assert_eq!(tasks.len(), 3);
    }

    #[test]
    fn chain_of_epilogues_fuses_fully() {
        let mut g = Graph::new("t");
        let c = g.push(conv(32), vec![]);
        let b = g.push(
            Op::Elementwise { kind: EwKind::BatchNorm, shape: vec![1, 32, 56, 56] },
            vec![c],
        );
        g.push(relu(vec![1, 32, 56, 56]), vec![b]);
        let tasks = partition(&g);
        assert_eq!(tasks.len(), 1);
        assert_eq!(tasks[0].subgraph.ops.len(), 3);
        assert_eq!(tasks[0].subgraph.epilogues().len(), 2);
    }

    #[test]
    fn different_shapes_do_not_dedupe() {
        let mut g = Graph::new("t");
        g.push(conv(64), vec![]);
        g.push(conv(128), vec![]);
        let tasks = partition(&g);
        assert_eq!(tasks.len(), 2);
    }

    #[test]
    fn workload_key_is_stable() {
        let sg = Subgraph { ops: vec![conv(64), relu(vec![1, 64, 56, 56])] };
        let sg2 = Subgraph { ops: vec![conv(64), relu(vec![1, 64, 56, 56])] };
        assert_eq!(sg.workload_key(), sg2.workload_key());
    }
}
