//! Lowering a fused [`Subgraph`] to its naive loop-nest program `p0`
//! (the 1:1 translation step ① of the paper's Fig. 1).

use crate::{EwKind, Op, Subgraph};
use felix_tir::{
    AccessKind, AccessPattern, AxisId, AxisKind, MemScope, OpCounts, Program,
};

const F32: u32 = 4;

/// Lowers a fused subgraph to its naive [`Program`].
///
/// The anchor becomes the first compute stage; each fused epilogue becomes a
/// follow-up stage over the anchor's output space, reading the intermediate
/// buffer (register-scoped, since fusion keeps it on-chip) plus any
/// parameter/residual inputs from global memory.
pub fn lower_subgraph(sg: &Subgraph) -> Program {
    let mut p = Program::new();
    let has_epilogues = !sg.epilogues().is_empty();
    lower_anchor(&mut p, sg.anchor(), has_epilogues);
    let out_shape = sg.anchor().out_shape();
    let mut prev_out = p
        .written_buffer(0)
        .expect("anchor writes a buffer");
    for (i, ep) in sg.epilogues().iter().enumerate() {
        let last = i + 1 == sg.epilogues().len();
        let (kind, per_iter) = match ep {
            Op::Elementwise { kind, .. } => (*kind, ew_counts(*kind)),
            other => panic!("epilogue must be element-wise, got {other}"),
        };
        let axes: Vec<(String, i64, AxisKind)> = out_shape
            .iter()
            .enumerate()
            .map(|(d, &e)| (format!("e{d}"), e, AxisKind::Spatial))
            .collect();
        let axis_ids: Vec<AxisId> = (0..out_shape.len() as u32).map(AxisId).collect();
        let ident: Vec<Vec<(AxisId, i64)>> =
            axis_ids.iter().map(|&a| vec![(a, 1)]).collect();
        let mut accesses = vec![AccessPattern {
            buffer: prev_out,
            kind: AccessKind::Read,
            dims: ident.clone(),
        }];
        // Secondary inputs.
        match kind {
            EwKind::BiasAdd | EwKind::BatchNorm => {
                // Per-channel parameters over the channel axis (dim 1 for
                // NCHW-style shapes, the last dim for 2-D shapes).
                let ch_dim = if out_shape.len() > 2 { 1 } else { out_shape.len() - 1 };
                let param = p.add_buffer(
                    format!("param{i}"),
                    vec![out_shape[ch_dim]],
                    F32,
                    MemScope::Global,
                );
                accesses.push(AccessPattern {
                    buffer: param,
                    kind: AccessKind::Read,
                    dims: vec![vec![(axis_ids[ch_dim], 1)]],
                });
            }
            EwKind::Add | EwKind::Mul => {
                let other = p.add_buffer(
                    format!("residual{i}"),
                    out_shape.clone(),
                    F32,
                    MemScope::Global,
                );
                accesses.push(AccessPattern {
                    buffer: other,
                    kind: AccessKind::Read,
                    dims: ident.clone(),
                });
            }
            _ => {}
        }
        let out = p.add_buffer(
            format!("ep{i}_out"),
            out_shape.clone(),
            F32,
            if last { MemScope::Global } else { MemScope::Local },
        );
        accesses.push(AccessPattern { buffer: out, kind: AccessKind::Write, dims: ident });
        p.add_stage(format!("ep{i}_{kind:?}"), axes, accesses, per_iter);
        prev_out = out;
    }
    p
}

fn ew_counts(kind: EwKind) -> OpCounts {
    match kind {
        EwKind::Relu => OpCounts { fcmp: 1.0, ..OpCounts::default() },
        EwKind::Relu6 => OpCounts { fcmp: 2.0, ..OpCounts::default() },
        EwKind::Add | EwKind::BiasAdd => OpCounts { fadd: 1.0, ..OpCounts::default() },
        EwKind::Mul => OpCounts { fmul: 1.0, ..OpCounts::default() },
        EwKind::BatchNorm => OpCounts { fadd: 1.0, fmul: 1.0, ..OpCounts::default() },
        EwKind::Tanh | EwKind::Sigmoid | EwKind::Gelu | EwKind::Silu => {
            OpCounts { fspecial: 1.0, fmul: 1.0, fadd: 1.0, ..OpCounts::default() }
        }
    }
}

fn out_scope(has_epilogues: bool) -> MemScope {
    if has_epilogues {
        MemScope::Local
    } else {
        MemScope::Global
    }
}

#[allow(clippy::too_many_lines)]
fn lower_anchor(p: &mut Program, op: &Op, has_epilogues: bool) {
    let scope = out_scope(has_epilogues);
    match op {
        Op::Conv2d { n, c, k, h, r, stride, pad, groups } => {
            let o = (h + 2 * pad - r) / stride + 1;
            if *groups > 1 {
                // Depthwise: channels are spatial; reduce over the window.
                assert_eq!(groups, c, "only depthwise grouping is modelled");
                let input = p.add_buffer("In", vec![*n, *c, *h, *h], F32, MemScope::Global);
                let w = p.add_buffer("W", vec![*c, *r, *r], F32, MemScope::Global);
                let out = p.add_buffer("Out", vec![*n, *c, o, o], F32, scope);
                let (an, ac, ap, aq, arr, ars) =
                    (AxisId(0), AxisId(1), AxisId(2), AxisId(3), AxisId(4), AxisId(5));
                p.add_stage(
                    "dwconv2d",
                    vec![
                        ("n".into(), *n, AxisKind::Spatial),
                        ("c".into(), *c, AxisKind::Spatial),
                        ("p".into(), o, AxisKind::Spatial),
                        ("q".into(), o, AxisKind::Spatial),
                        ("rr".into(), *r, AxisKind::Reduction),
                        ("rs".into(), *r, AxisKind::Reduction),
                    ],
                    vec![
                        AccessPattern {
                            buffer: input,
                            kind: AccessKind::Read,
                            dims: vec![
                                vec![(an, 1)],
                                vec![(ac, 1)],
                                vec![(ap, *stride), (arr, 1)],
                                vec![(aq, *stride), (ars, 1)],
                            ],
                        },
                        AccessPattern {
                            buffer: w,
                            kind: AccessKind::Read,
                            dims: vec![vec![(ac, 1)], vec![(arr, 1)], vec![(ars, 1)]],
                        },
                        AccessPattern {
                            buffer: out,
                            kind: AccessKind::Write,
                            dims: vec![vec![(an, 1)], vec![(ac, 1)], vec![(ap, 1)], vec![(aq, 1)]],
                        },
                    ],
                    OpCounts { fadd: 1.0, fmul: 1.0, ..OpCounts::default() },
                );
            } else {
                let input = p.add_buffer("In", vec![*n, *c, *h, *h], F32, MemScope::Global);
                let w = p.add_buffer("W", vec![*k, *c, *r, *r], F32, MemScope::Global);
                let out = p.add_buffer("Out", vec![*n, *k, o, o], F32, scope);
                let (an, ak, ap, aq) = (AxisId(0), AxisId(1), AxisId(2), AxisId(3));
                let (arc, arr, ars) = (AxisId(4), AxisId(5), AxisId(6));
                p.add_stage(
                    "conv2d",
                    vec![
                        ("n".into(), *n, AxisKind::Spatial),
                        ("k".into(), *k, AxisKind::Spatial),
                        ("p".into(), o, AxisKind::Spatial),
                        ("q".into(), o, AxisKind::Spatial),
                        ("rc".into(), *c, AxisKind::Reduction),
                        ("rr".into(), *r, AxisKind::Reduction),
                        ("rs".into(), *r, AxisKind::Reduction),
                    ],
                    vec![
                        AccessPattern {
                            buffer: input,
                            kind: AccessKind::Read,
                            dims: vec![
                                vec![(an, 1)],
                                vec![(arc, 1)],
                                vec![(ap, *stride), (arr, 1)],
                                vec![(aq, *stride), (ars, 1)],
                            ],
                        },
                        AccessPattern {
                            buffer: w,
                            kind: AccessKind::Read,
                            dims: vec![vec![(ak, 1)], vec![(arc, 1)], vec![(arr, 1)], vec![(ars, 1)]],
                        },
                        AccessPattern {
                            buffer: out,
                            kind: AccessKind::Write,
                            dims: vec![vec![(an, 1)], vec![(ak, 1)], vec![(ap, 1)], vec![(aq, 1)]],
                        },
                    ],
                    OpCounts { fadd: 1.0, fmul: 1.0, ..OpCounts::default() },
                );
            }
        }
        Op::Conv3d { n, c, k, d, h, r, stride, pad } => {
            let od = (d + 2 * pad - r) / stride + 1;
            let o = (h + 2 * pad - r) / stride + 1;
            let input = p.add_buffer("In", vec![*n, *c, *d, *h, *h], F32, MemScope::Global);
            let w = p.add_buffer("W", vec![*k, *c, *r, *r, *r], F32, MemScope::Global);
            let out = p.add_buffer("Out", vec![*n, *k, od, o, o], F32, scope);
            let (an, ak, ad, ap, aq) = (AxisId(0), AxisId(1), AxisId(2), AxisId(3), AxisId(4));
            let (arc, ard, arr, ars) = (AxisId(5), AxisId(6), AxisId(7), AxisId(8));
            p.add_stage(
                "conv3d",
                vec![
                    ("n".into(), *n, AxisKind::Spatial),
                    ("k".into(), *k, AxisKind::Spatial),
                    ("d".into(), od, AxisKind::Spatial),
                    ("p".into(), o, AxisKind::Spatial),
                    ("q".into(), o, AxisKind::Spatial),
                    ("rc".into(), *c, AxisKind::Reduction),
                    ("rd".into(), *r, AxisKind::Reduction),
                    ("rr".into(), *r, AxisKind::Reduction),
                    ("rs".into(), *r, AxisKind::Reduction),
                ],
                vec![
                    AccessPattern {
                        buffer: input,
                        kind: AccessKind::Read,
                        dims: vec![
                            vec![(an, 1)],
                            vec![(arc, 1)],
                            vec![(ad, *stride), (ard, 1)],
                            vec![(ap, *stride), (arr, 1)],
                            vec![(aq, *stride), (ars, 1)],
                        ],
                    },
                    AccessPattern {
                        buffer: w,
                        kind: AccessKind::Read,
                        dims: vec![
                            vec![(ak, 1)],
                            vec![(arc, 1)],
                            vec![(ard, 1)],
                            vec![(arr, 1)],
                            vec![(ars, 1)],
                        ],
                    },
                    AccessPattern {
                        buffer: out,
                        kind: AccessKind::Write,
                        dims: vec![
                            vec![(an, 1)],
                            vec![(ak, 1)],
                            vec![(ad, 1)],
                            vec![(ap, 1)],
                            vec![(aq, 1)],
                        ],
                    },
                ],
                OpCounts { fadd: 1.0, fmul: 1.0, ..OpCounts::default() },
            );
        }
        Op::ConvTranspose2d { n, c, k, h, r, stride, pad } => {
            let o = (h - 1) * stride + r - 2 * pad;
            // Modelled over the output space; each output pixel reduces over
            // c × ⌈r/stride⌉² input taps (the fractionally-strided view).
            let taps = ((*r + stride - 1) / stride).max(1);
            let input = p.add_buffer("In", vec![*n, *c, *h, *h], F32, MemScope::Global);
            let w = p.add_buffer("W", vec![*c, *k, *r, *r], F32, MemScope::Global);
            let out = p.add_buffer("Out", vec![*n, *k, o, o], F32, scope);
            let (an, ak, ap, aq) = (AxisId(0), AxisId(1), AxisId(2), AxisId(3));
            let (arc, arr, ars) = (AxisId(4), AxisId(5), AxisId(6));
            p.add_stage(
                "tconv2d",
                vec![
                    ("n".into(), *n, AxisKind::Spatial),
                    ("k".into(), *k, AxisKind::Spatial),
                    ("p".into(), o, AxisKind::Spatial),
                    ("q".into(), o, AxisKind::Spatial),
                    ("rc".into(), *c, AxisKind::Reduction),
                    ("rr".into(), taps, AxisKind::Reduction),
                    ("rs".into(), taps, AxisKind::Reduction),
                ],
                vec![
                    AccessPattern {
                        buffer: input,
                        kind: AccessKind::Read,
                        dims: vec![
                            vec![(an, 1)],
                            vec![(arc, 1)],
                            vec![(ap, 1), (arr, 1)],
                            vec![(aq, 1), (ars, 1)],
                        ],
                    },
                    AccessPattern {
                        buffer: w,
                        kind: AccessKind::Read,
                        dims: vec![vec![(arc, 1)], vec![(ak, 1)], vec![(arr, 1)], vec![(ars, 1)]],
                    },
                    AccessPattern {
                        buffer: out,
                        kind: AccessKind::Write,
                        dims: vec![vec![(an, 1)], vec![(ak, 1)], vec![(ap, 1)], vec![(aq, 1)]],
                    },
                ],
                OpCounts { fadd: 1.0, fmul: 1.0, ..OpCounts::default() },
            );
        }
        Op::Dense { m, k, n } => {
            let a = p.add_buffer("A", vec![*m, *k], F32, MemScope::Global);
            let b = p.add_buffer("B", vec![*n, *k], F32, MemScope::Global);
            let out = p.add_buffer("Out", vec![*m, *n], F32, scope);
            let (ai, aj, ak) = (AxisId(0), AxisId(1), AxisId(2));
            p.add_stage(
                "dense",
                vec![
                    ("i".into(), *m, AxisKind::Spatial),
                    ("j".into(), *n, AxisKind::Spatial),
                    ("k".into(), *k, AxisKind::Reduction),
                ],
                vec![
                    AccessPattern { buffer: a, kind: AccessKind::Read, dims: vec![vec![(ai, 1)], vec![(ak, 1)]] },
                    AccessPattern { buffer: b, kind: AccessKind::Read, dims: vec![vec![(aj, 1)], vec![(ak, 1)]] },
                    AccessPattern { buffer: out, kind: AccessKind::Write, dims: vec![vec![(ai, 1)], vec![(aj, 1)]] },
                ],
                OpCounts { fadd: 1.0, fmul: 1.0, ..OpCounts::default() },
            );
        }
        Op::BatchMatmul { b, m, k, n } => {
            let a = p.add_buffer("A", vec![*b, *m, *k], F32, MemScope::Global);
            let bb = p.add_buffer("B", vec![*b, *k, *n], F32, MemScope::Global);
            let out = p.add_buffer("Out", vec![*b, *m, *n], F32, scope);
            let (ab, ai, aj, ak) = (AxisId(0), AxisId(1), AxisId(2), AxisId(3));
            p.add_stage(
                "batch_matmul",
                vec![
                    ("b".into(), *b, AxisKind::Spatial),
                    ("i".into(), *m, AxisKind::Spatial),
                    ("j".into(), *n, AxisKind::Spatial),
                    ("k".into(), *k, AxisKind::Reduction),
                ],
                vec![
                    AccessPattern {
                        buffer: a,
                        kind: AccessKind::Read,
                        dims: vec![vec![(ab, 1)], vec![(ai, 1)], vec![(ak, 1)]],
                    },
                    AccessPattern {
                        buffer: bb,
                        kind: AccessKind::Read,
                        dims: vec![vec![(ab, 1)], vec![(ak, 1)], vec![(aj, 1)]],
                    },
                    AccessPattern {
                        buffer: out,
                        kind: AccessKind::Write,
                        dims: vec![vec![(ab, 1)], vec![(ai, 1)], vec![(aj, 1)]],
                    },
                ],
                OpCounts { fadd: 1.0, fmul: 1.0, ..OpCounts::default() },
            );
        }
        Op::Softmax { rows, cols } => {
            let x = p.add_buffer("X", vec![*rows, *cols], F32, MemScope::Global);
            let y = p.add_buffer("Y", vec![*rows, *cols], F32, scope);
            let (ar, ac) = (AxisId(0), AxisId(1));
            p.add_stage(
                "softmax",
                vec![
                    ("r".into(), *rows, AxisKind::Spatial),
                    ("c".into(), *cols, AxisKind::Spatial),
                ],
                vec![
                    AccessPattern { buffer: x, kind: AccessKind::Read, dims: vec![vec![(ar, 1)], vec![(ac, 1)]] },
                    AccessPattern { buffer: y, kind: AccessKind::Write, dims: vec![vec![(ar, 1)], vec![(ac, 1)]] },
                ],
                // exp + running max/sum + final divide, amortized per element.
                OpCounts { fadd: 2.0, fdiv: 1.0, fspecial: 1.0, fcmp: 1.0, ..OpCounts::default() },
            );
        }
        Op::LayerNorm { rows, cols } => {
            let x = p.add_buffer("X", vec![*rows, *cols], F32, MemScope::Global);
            let y = p.add_buffer("Y", vec![*rows, *cols], F32, scope);
            let (ar, ac) = (AxisId(0), AxisId(1));
            p.add_stage(
                "layernorm",
                vec![
                    ("r".into(), *rows, AxisKind::Spatial),
                    ("c".into(), *cols, AxisKind::Spatial),
                ],
                vec![
                    AccessPattern { buffer: x, kind: AccessKind::Read, dims: vec![vec![(ar, 1)], vec![(ac, 1)]] },
                    AccessPattern { buffer: y, kind: AccessKind::Write, dims: vec![vec![(ar, 1)], vec![(ac, 1)]] },
                ],
                OpCounts { fadd: 3.0, fmul: 2.0, fspecial: 1.0, ..OpCounts::default() },
            );
        }
        Op::MaxPool2d { n, c, h, r, stride, pad } => {
            let o = (h + 2 * pad - r) / stride + 1;
            lower_pool(p, *n, *c, *h, o, *r, *stride, scope, true);
        }
        Op::AvgPool2d { n, c, h, r, stride } => {
            let o = (h - r) / stride + 1;
            lower_pool(p, *n, *c, *h, o, *r, *stride, scope, false);
        }
        Op::GlobalAvgPool { n, c, h } => {
            let x = p.add_buffer("X", vec![*n, *c, *h, *h], F32, MemScope::Global);
            let y = p.add_buffer("Y", vec![*n, *c], F32, scope);
            let (an, ac, arh, arw) = (AxisId(0), AxisId(1), AxisId(2), AxisId(3));
            p.add_stage(
                "global_avgpool",
                vec![
                    ("n".into(), *n, AxisKind::Spatial),
                    ("c".into(), *c, AxisKind::Spatial),
                    ("rh".into(), *h, AxisKind::Reduction),
                    ("rw".into(), *h, AxisKind::Reduction),
                ],
                vec![
                    AccessPattern {
                        buffer: x,
                        kind: AccessKind::Read,
                        dims: vec![vec![(an, 1)], vec![(ac, 1)], vec![(arh, 1)], vec![(arw, 1)]],
                    },
                    AccessPattern {
                        buffer: y,
                        kind: AccessKind::Write,
                        dims: vec![vec![(an, 1)], vec![(ac, 1)]],
                    },
                ],
                OpCounts { fadd: 1.0, ..OpCounts::default() },
            );
        }
        Op::Elementwise { kind, shape } => {
            let x = p.add_buffer("X", shape.clone(), F32, MemScope::Global);
            let axes: Vec<(String, i64, AxisKind)> = shape
                .iter()
                .enumerate()
                .map(|(d, &e)| (format!("a{d}"), e, AxisKind::Spatial))
                .collect();
            let axis_ids: Vec<AxisId> = (0..shape.len() as u32).map(AxisId).collect();
            let ident: Vec<Vec<(AxisId, i64)>> =
                axis_ids.iter().map(|&a| vec![(a, 1)]).collect();
            let mut accesses = vec![AccessPattern {
                buffer: x,
                kind: AccessKind::Read,
                dims: ident.clone(),
            }];
            if kind.arity() == 2 {
                let x2 = p.add_buffer("X2", shape.clone(), F32, MemScope::Global);
                accesses.push(AccessPattern {
                    buffer: x2,
                    kind: AccessKind::Read,
                    dims: ident.clone(),
                });
            }
            let y = p.add_buffer("Y", shape.clone(), F32, scope);
            accesses.push(AccessPattern { buffer: y, kind: AccessKind::Write, dims: ident });
            p.add_stage(format!("ew_{kind:?}"), axes, accesses, ew_counts(*kind));
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn lower_pool(
    p: &mut Program,
    n: i64,
    c: i64,
    h: i64,
    o: i64,
    r: i64,
    stride: i64,
    scope: MemScope,
    is_max: bool,
) {
    let x = p.add_buffer("X", vec![n, c, h, h], F32, MemScope::Global);
    let y = p.add_buffer("Y", vec![n, c, o, o], F32, scope);
    let (an, ac, ap, aq, arr, ars) =
        (AxisId(0), AxisId(1), AxisId(2), AxisId(3), AxisId(4), AxisId(5));
    let counts = if is_max {
        OpCounts { fcmp: 1.0, ..OpCounts::default() }
    } else {
        OpCounts { fadd: 1.0, ..OpCounts::default() }
    };
    p.add_stage(
        if is_max { "maxpool2d" } else { "avgpool2d" },
        vec![
            ("n".into(), n, AxisKind::Spatial),
            ("c".into(), c, AxisKind::Spatial),
            ("p".into(), o, AxisKind::Spatial),
            ("q".into(), o, AxisKind::Spatial),
            ("rr".into(), r, AxisKind::Reduction),
            ("rs".into(), r, AxisKind::Reduction),
        ],
        vec![
            AccessPattern {
                buffer: x,
                kind: AccessKind::Read,
                dims: vec![
                    vec![(an, 1)],
                    vec![(ac, 1)],
                    vec![(ap, stride), (arr, 1)],
                    vec![(aq, stride), (ars, 1)],
                ],
            },
            AccessPattern {
                buffer: y,
                kind: AccessKind::Write,
                dims: vec![vec![(an, 1)], vec![(ac, 1)], vec![(ap, 1)], vec![(aq, 1)]],
            },
        ],
        counts,
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use felix_tir::StageKind;

    #[test]
    fn conv_relu_lowers_to_two_stages() {
        let sg = Subgraph {
            ops: vec![
                Op::Conv2d { n: 1, c: 64, k: 64, h: 56, r: 3, stride: 1, pad: 1, groups: 1 },
                Op::Elementwise { kind: EwKind::Relu, shape: vec![1, 64, 56, 56] },
            ],
        };
        let p = lower_subgraph(&sg);
        assert_eq!(p.stages.len(), 2);
        assert_eq!(p.stages[0].name, "conv2d");
        // Intermediate is register-local, final output is global.
        let inter = p.written_buffer(0).unwrap();
        assert_eq!(p.buffers[inter.0 as usize].scope, MemScope::Local);
        let out = p.written_buffer(1).unwrap();
        assert_eq!(p.buffers[out.0 as usize].scope, MemScope::Global);
    }

    #[test]
    fn conv_axes_and_reductions() {
        let sg = Subgraph {
            ops: vec![Op::Conv2d { n: 1, c: 3, k: 64, h: 224, r: 7, stride: 2, pad: 3, groups: 1 }],
        };
        let p = lower_subgraph(&sg);
        let st = &p.stages[0];
        assert_eq!(st.axes.len(), 7);
        assert_eq!(st.axes.iter().filter(|a| a.kind == AxisKind::Reduction).count(), 3);
        // Output spatial extent of the 7x7/s2 conv on 224: 112.
        assert_eq!(st.axes[2].extent, 112);
    }

    #[test]
    fn conv_total_iters_matches_flops() {
        let op = Op::Conv2d { n: 1, c: 64, k: 128, h: 28, r: 3, stride: 1, pad: 1, groups: 1 };
        let sg = Subgraph { ops: vec![op.clone()] };
        let mut p = lower_subgraph(&sg);
        let total = p.total_iters(0);
        let iters = p.pool.eval(total, &[]);
        // 2 flops per iteration (MAC) must equal op.flops().
        assert_eq!(iters * 2.0, op.flops());
    }

    #[test]
    fn depthwise_has_no_channel_reduction() {
        let sg = Subgraph {
            ops: vec![Op::Conv2d { n: 1, c: 32, k: 32, h: 112, r: 3, stride: 1, pad: 1, groups: 32 }],
        };
        let p = lower_subgraph(&sg);
        let st = &p.stages[0];
        assert_eq!(st.axes.iter().filter(|a| a.kind == AxisKind::Reduction).count(), 2);
    }

    #[test]
    fn bias_add_epilogue_reads_param_vector() {
        let sg = Subgraph {
            ops: vec![
                Op::Dense { m: 1, k: 2048, n: 1000 },
                Op::Elementwise { kind: EwKind::BiasAdd, shape: vec![1, 1000] },
            ],
        };
        let p = lower_subgraph(&sg);
        let ep = &p.stages[1];
        assert_eq!(ep.accesses.len(), 3); // prev, bias, out
        let bias_buf = ep.accesses[1].buffer;
        assert_eq!(p.buffers[bias_buf.0 as usize].dims, vec![1000]);
    }

    #[test]
    fn residual_add_reads_full_tensor() {
        let sg = Subgraph {
            ops: vec![
                Op::Conv2d { n: 1, c: 64, k: 64, h: 56, r: 3, stride: 1, pad: 1, groups: 1 },
                Op::Elementwise { kind: EwKind::Add, shape: vec![1, 64, 56, 56] },
            ],
        };
        let p = lower_subgraph(&sg);
        let ep = &p.stages[1];
        let res_buf = ep.accesses[1].buffer;
        assert_eq!(p.buffers[res_buf.0 as usize].dims, vec![1, 64, 56, 56]);
    }

    #[test]
    fn all_ops_lower_without_panic() {
        let ops = vec![
            Op::Conv3d { n: 1, c: 64, k: 64, d: 8, h: 28, r: 3, stride: 1, pad: 1 },
            Op::ConvTranspose2d { n: 1, c: 512, k: 256, h: 4, r: 4, stride: 2, pad: 1 },
            Op::BatchMatmul { b: 12, m: 64, k: 64, n: 64 },
            Op::Softmax { rows: 768, cols: 64 },
            Op::LayerNorm { rows: 64, cols: 768 },
            Op::MaxPool2d { n: 1, c: 64, h: 112, r: 3, stride: 2, pad: 1 },
            Op::AvgPool2d { n: 1, c: 64, h: 56, r: 2, stride: 2 },
            Op::GlobalAvgPool { n: 1, c: 2048, h: 7 },
            Op::Elementwise { kind: EwKind::Add, shape: vec![1, 64, 56, 56] },
        ];
        for op in ops {
            let p = lower_subgraph(&Subgraph { ops: vec![op.clone()] });
            assert_eq!(p.stages.len(), 1, "{op}");
            assert_eq!(p.stages[0].kind, StageKind::Compute);
            assert!(p.written_buffer(0).is_some());
        }
    }
}
