//! Tensor operators, computation graphs, operator fusion, and the model zoo.
//!
//! A [`Graph`] is a DAG of tensor operator [`Node`]s (the paper's input
//! representation). [`fusion`] partitions it into fused subgraphs and
//! deduplicates them into [`Task`]s — the unit Felix/Ansor tune
//! independently (paper §3.1). [`lower`] turns a subgraph into the naive
//! loop-nest [`felix_tir::Program`] `p0`. [`models`] builds the six
//! evaluation networks (ResNet-50, MobileNet-v2, R3D-18, DCGAN, ViT-B/32,
//! LLaMA).

pub mod fusion;
pub mod lower;
pub mod models;

pub use fusion::{partition, Subgraph, Task};

use std::fmt;

/// Identifier of a node within a [`Graph`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct NodeId(pub u32);

/// Element-wise operator kinds (cheap ops that fuse into anchors).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum EwKind {
    /// `max(x, 0)`.
    Relu,
    /// Two-input addition (residual connections).
    Add,
    /// Broadcast bias addition over the last dimension.
    BiasAdd,
    /// Inference-time batch normalization (scale + shift).
    BatchNorm,
    /// Hyperbolic tangent.
    Tanh,
    /// Logistic sigmoid.
    Sigmoid,
    /// `x * sigmoid(x)` (LLaMA MLP).
    Silu,
    /// Gaussian error linear unit (ViT MLP).
    Gelu,
    /// Two-input multiplication (gating).
    Mul,
    /// ReLU6 clip (MobileNet-v2).
    Relu6,
}

impl EwKind {
    /// Number of tensor inputs.
    pub fn arity(self) -> usize {
        match self {
            EwKind::Add | EwKind::Mul => 2,
            _ => 1,
        }
    }
}

/// A tensor operator with its full shape configuration.
///
/// Shapes live on the operator (not on edges) because scheduling and cost
/// estimation need them; graph edges only drive fusion decisions.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Op {
    /// 2-D convolution, NCHW. `groups == in_ch` expresses depthwise.
    Conv2d {
        /// Batch size.
        n: i64,
        /// Input channels.
        c: i64,
        /// Output channels.
        k: i64,
        /// Input height/width (square).
        h: i64,
        /// Kernel size (square).
        r: i64,
        /// Stride.
        stride: i64,
        /// Padding.
        pad: i64,
        /// Groups (1 = dense conv, `c` = depthwise).
        groups: i64,
    },
    /// 3-D convolution, NCDHW.
    Conv3d {
        /// Batch size.
        n: i64,
        /// Input channels.
        c: i64,
        /// Output channels.
        k: i64,
        /// Input depth (frames).
        d: i64,
        /// Input height/width (square).
        h: i64,
        /// Kernel size (cubic).
        r: i64,
        /// Stride.
        stride: i64,
        /// Padding.
        pad: i64,
    },
    /// Transposed 2-D convolution (DCGAN generator).
    ConvTranspose2d {
        /// Batch size.
        n: i64,
        /// Input channels.
        c: i64,
        /// Output channels.
        k: i64,
        /// Input height/width (square).
        h: i64,
        /// Kernel size (square).
        r: i64,
        /// Stride (upsampling factor).
        stride: i64,
        /// Padding.
        pad: i64,
    },
    /// Dense / fully-connected: `[m, k] x [k, n] -> [m, n]`.
    Dense {
        /// Rows (batch × tokens).
        m: i64,
        /// Reduction size (input features).
        k: i64,
        /// Output features.
        n: i64,
    },
    /// Batched matmul: `[b, m, k] x [b, k, n] -> [b, m, n]`.
    BatchMatmul {
        /// Batch (e.g. batch × heads).
        b: i64,
        /// Rows.
        m: i64,
        /// Reduction size.
        k: i64,
        /// Columns.
        n: i64,
    },
    /// Row-wise softmax over `[rows, cols]`.
    Softmax {
        /// Independent rows.
        rows: i64,
        /// Normalized dimension.
        cols: i64,
    },
    /// Layer normalization over the last dimension (also stands in for
    /// RMSNorm).
    LayerNorm {
        /// Independent rows.
        rows: i64,
        /// Normalized dimension.
        cols: i64,
    },
    /// 2-D max pooling.
    MaxPool2d {
        /// Batch size.
        n: i64,
        /// Channels.
        c: i64,
        /// Input height/width.
        h: i64,
        /// Window size.
        r: i64,
        /// Stride.
        stride: i64,
        /// Padding.
        pad: i64,
    },
    /// 2-D average pooling.
    AvgPool2d {
        /// Batch size.
        n: i64,
        /// Channels.
        c: i64,
        /// Input height/width.
        h: i64,
        /// Window size.
        r: i64,
        /// Stride.
        stride: i64,
    },
    /// Global average pooling `[n, c, h, w] -> [n, c]`.
    GlobalAvgPool {
        /// Batch size.
        n: i64,
        /// Channels.
        c: i64,
        /// Spatial size.
        h: i64,
    },
    /// An element-wise operator over `shape`.
    Elementwise {
        /// Kind.
        kind: EwKind,
        /// Tensor shape.
        shape: Vec<i64>,
    },
}

impl Op {
    /// Output shape of the operator.
    pub fn out_shape(&self) -> Vec<i64> {
        match self {
            Op::Conv2d { n, k, h, r, stride, pad, .. } => {
                let o = (h + 2 * pad - r) / stride + 1;
                vec![*n, *k, o, o]
            }
            Op::Conv3d { n, k, d, h, r, stride, pad, .. } => {
                let od = (d + 2 * pad - r) / stride + 1;
                let o = (h + 2 * pad - r) / stride + 1;
                vec![*n, *k, od, o, o]
            }
            Op::ConvTranspose2d { n, k, h, r, stride, pad, .. } => {
                let o = (h - 1) * stride + r - 2 * pad;
                vec![*n, *k, o, o]
            }
            Op::Dense { m, n, .. } => vec![*m, *n],
            Op::BatchMatmul { b, m, n, .. } => vec![*b, *m, *n],
            Op::Softmax { rows, cols } | Op::LayerNorm { rows, cols } => {
                vec![*rows, *cols]
            }
            Op::MaxPool2d { n, c, h, r, stride, pad } => {
                let o = (h + 2 * pad - r) / stride + 1;
                vec![*n, *c, o, o]
            }
            Op::AvgPool2d { n, c, h, r, stride } => {
                let o = (h - r) / stride + 1;
                vec![*n, *c, o, o]
            }
            Op::GlobalAvgPool { n, c, .. } => vec![*n, *c],
            Op::Elementwise { shape, .. } => shape.clone(),
        }
    }

    /// Total floating-point operations of the operator.
    pub fn flops(&self) -> f64 {
        let out: f64 = self.out_shape().iter().map(|&d| d as f64).product();
        match self {
            Op::Conv2d { c, r, groups, .. } => out * 2.0 * (*c as f64 / *groups as f64) * (r * r) as f64,
            Op::Conv3d { c, r, .. } => out * 2.0 * *c as f64 * (r * r * r) as f64,
            Op::ConvTranspose2d { c, r, stride, .. } => {
                // Each output element reduces over c * (r/stride)^2 taps.
                let taps = ((*r as f64) / (*stride as f64)).ceil().max(1.0);
                out * 2.0 * *c as f64 * taps * taps
            }
            Op::Dense { k, .. } => out * 2.0 * *k as f64,
            Op::BatchMatmul { k, .. } => out * 2.0 * *k as f64,
            Op::Softmax { .. } => out * 4.0,
            Op::LayerNorm { .. } => out * 6.0,
            Op::MaxPool2d { r, .. } => out * (r * r) as f64,
            Op::AvgPool2d { r, .. } => out * (r * r) as f64,
            Op::GlobalAvgPool { h, .. } => out * (*h as f64) * (*h as f64),
            Op::Elementwise { kind, .. } => {
                let per = match kind {
                    EwKind::Tanh | EwKind::Sigmoid | EwKind::Gelu | EwKind::Silu => 4.0,
                    EwKind::BatchNorm => 2.0,
                    _ => 1.0,
                };
                out * per
            }
        }
    }

    /// True for operators that anchor a fused subgraph (everything except
    /// element-wise epilogues).
    pub fn is_anchor(&self) -> bool {
        !matches!(self, Op::Elementwise { .. })
    }

    /// A short name for printing.
    pub fn short_name(&self) -> &'static str {
        match self {
            Op::Conv2d { groups, .. } if *groups > 1 => "dwconv2d",
            Op::Conv2d { .. } => "conv2d",
            Op::Conv3d { .. } => "conv3d",
            Op::ConvTranspose2d { .. } => "tconv2d",
            Op::Dense { .. } => "dense",
            Op::BatchMatmul { .. } => "batch_matmul",
            Op::Softmax { .. } => "softmax",
            Op::LayerNorm { .. } => "layernorm",
            Op::MaxPool2d { .. } => "maxpool2d",
            Op::AvgPool2d { .. } => "avgpool2d",
            Op::GlobalAvgPool { .. } => "global_avgpool",
            Op::Elementwise { .. } => "elementwise",
        }
    }
}

impl fmt::Display for Op {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{:?}", self.short_name(), self.out_shape())
    }
}

/// One node of a computation graph.
#[derive(Clone, Debug)]
pub struct Node {
    /// Stable id.
    pub id: NodeId,
    /// The operator.
    pub op: Op,
    /// Producer nodes feeding this operator.
    pub inputs: Vec<NodeId>,
}

/// A computation graph: a DAG of tensor operators.
#[derive(Clone, Debug, Default)]
pub struct Graph {
    /// Nodes in topological (insertion) order.
    pub nodes: Vec<Node>,
    /// Model name (for reports).
    pub name: String,
}

impl Graph {
    /// An empty graph with a name.
    pub fn new(name: impl Into<String>) -> Self {
        Graph { nodes: Vec::new(), name: name.into() }
    }

    /// Appends an operator fed by `inputs`, returning its id.
    pub fn push(&mut self, op: Op, inputs: Vec<NodeId>) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Node { id, op, inputs });
        id
    }

    /// Number of consumers of each node.
    pub fn consumer_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.nodes.len()];
        for n in &self.nodes {
            for i in &n.inputs {
                counts[i.0 as usize] += 1;
            }
        }
        counts
    }

    /// Total floating-point operations of the whole graph.
    pub fn total_flops(&self) -> f64 {
        self.nodes.iter().map(|n| n.op.flops()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conv_shapes() {
        let c = Op::Conv2d { n: 1, c: 3, k: 64, h: 224, r: 7, stride: 2, pad: 3, groups: 1 };
        assert_eq!(c.out_shape(), vec![1, 64, 112, 112]);
        let p = Op::MaxPool2d { n: 1, c: 64, h: 112, r: 3, stride: 2, pad: 1 };
        assert_eq!(p.out_shape(), vec![1, 64, 56, 56]);
    }

    #[test]
    fn tconv_upsamples() {
        let t = Op::ConvTranspose2d { n: 1, c: 100, k: 512, h: 1, r: 4, stride: 1, pad: 0 };
        assert_eq!(t.out_shape(), vec![1, 512, 4, 4]);
        let t2 = Op::ConvTranspose2d { n: 1, c: 512, k: 256, h: 4, r: 4, stride: 2, pad: 1 };
        assert_eq!(t2.out_shape(), vec![1, 256, 8, 8]);
    }

    #[test]
    fn dense_flops() {
        let d = Op::Dense { m: 1, k: 2048, n: 1000 };
        assert_eq!(d.flops(), 2.0 * 2048.0 * 1000.0);
    }

    #[test]
    fn depthwise_flops_smaller_than_dense_conv() {
        let dw = Op::Conv2d { n: 1, c: 32, k: 32, h: 112, r: 3, stride: 1, pad: 1, groups: 32 };
        let full = Op::Conv2d { n: 1, c: 32, k: 32, h: 112, r: 3, stride: 1, pad: 1, groups: 1 };
        assert!(dw.flops() * 16.0 < full.flops());
    }

    #[test]
    fn graph_push_and_consumers() {
        let mut g = Graph::new("test");
        let a = g.push(
            Op::Conv2d { n: 1, c: 3, k: 8, h: 8, r: 3, stride: 1, pad: 1, groups: 1 },
            vec![],
        );
        let b = g.push(Op::Elementwise { kind: EwKind::Relu, shape: vec![1, 8, 8, 8] }, vec![a]);
        let _c = g.push(Op::Elementwise { kind: EwKind::Add, shape: vec![1, 8, 8, 8] }, vec![a, b]);
        let counts = g.consumer_counts();
        assert_eq!(counts[0], 2);
        assert_eq!(counts[1], 1);
        assert_eq!(counts[2], 0);
    }
}
