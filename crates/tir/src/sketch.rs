//! Ansor-style sketch generation, extended with symbolic annotation
//! (paper §3.2).
//!
//! A *sketch* is a structure of transformations with unfilled tunable
//! parameters. Where Ansor fills the parameters with concrete integers,
//! Felix fills them with fresh *schedule variables*, producing a symbolic
//! schedule whose application yields a symbolic program. Both tools share
//! the search space defined here (the paper keeps the dimensions identical
//! for a fair comparison).
//!
//! Two sketch kinds are generated per subgraph:
//!
//! - **Thread-bind** (always): spatial loops bound to `blockIdx`, the
//!   innermost spatial axis split into `threadIdx` × `vectorize` levels plus
//!   an unroll pragma — the shape of the paper's schedule `s*₁`.
//! - **Multi-level tiling** (for compute-intensive reductions): the
//!   SSSRRSRS structure with per-spatial-axis `vthread`/`threadIdx`/inner
//!   tiles, two-level reduction tiling, `cache_read` staging of inputs into
//!   shared memory, fused epilogues, and an unroll pragma — the shape of the
//!   paper's schedule `s*₂` (Fig. 3).

use crate::steps::{apply, axis_loop_positions, Step};
use crate::{AccessKind, AxisKind, Constraint, LoopKind, MemScope, Program, StageKind};
use felix_expr::{ExprId, VarId};

/// Hardware limits that shape the search space and its constraints.
#[derive(Clone, Copy, Debug)]
pub struct HardwareParams {
    /// Maximum threads per block (CUDA limit, typically 1024).
    pub max_threads_per_block: i64,
    /// Shared memory per block in bytes.
    pub max_shared_bytes: i64,
    /// Maximum virtual threads per axis.
    pub max_vthread: i64,
    /// Maximum auto-unroll step.
    pub max_unroll: i64,
    /// Maximum vectorization lanes.
    pub max_vector_lanes: i64,
}

impl Default for HardwareParams {
    fn default() -> Self {
        HardwareParams {
            max_threads_per_block: 1024,
            max_shared_bytes: 48 * 1024,
            max_vthread: 8,
            max_unroll: 512,
            max_vector_lanes: 4,
        }
    }
}

/// What a schedule variable parameterizes — needed for sampling initial
/// values and for rounding relaxed values back to valid integers.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SchedVarKind {
    /// A tile-split level of `axis` in `stage`; the product of all split
    /// variables of the same `(stage, axis)` must divide `extent`.
    Split {
        /// Stage the split belongs to.
        stage: usize,
        /// Axis id within that stage.
        axis: crate::AxisId,
        /// The axis extent being split.
        extent: i64,
        /// Level index among this axis's split variables (outer → inner).
        level: u32,
    },
    /// An auto-unroll max step in `[1, max]`, rounded to a power of two.
    Unroll {
        /// Upper bound.
        max: i64,
    },
}

/// Metadata for one schedule variable.
#[derive(Clone, Copy, Debug)]
pub struct SchedVarInfo {
    /// The variable.
    pub var: VarId,
    /// Its role.
    pub kind: SchedVarKind,
}

impl SchedVarInfo {
    /// Upper bound of the variable's valid range (lower bound is 1).
    pub fn upper_bound(&self) -> i64 {
        match self.kind {
            SchedVarKind::Split { extent, .. } => extent,
            SchedVarKind::Unroll { max } => max,
        }
    }
}

/// A generated symbolic schedule: the transformed symbolic program plus the
/// step list that produced it (kept for inspection / printing).
#[derive(Clone, Debug)]
pub struct Sketch {
    /// Short label (`thread-bind`, `multi-level-tiling`).
    pub name: &'static str,
    /// The transformed symbolic program (`p* = T(p0, s*)`).
    pub program: Program,
    /// The steps of the symbolic schedule `s*`.
    pub steps: Vec<Step>,
}

fn fresh_split_var(
    p: &mut Program,
    name: String,
    stage: usize,
    axis: crate::AxisId,
    extent: i64,
    level: u32,
) -> ExprId {
    let v = p.vars.fresh(name);
    p.sched_vars.push(SchedVarInfo {
        var: v,
        kind: SchedVarKind::Split { stage, axis, extent, level },
    });
    let x = p.pool.var(v);
    // Range constraints 1 <= x <= extent, expressed as `expr <= 0`.
    let one = p.pool.constf(1.0);
    let lo = p.pool.sub(one, x);
    let ext = p.pool.consti(extent);
    let hi = p.pool.sub(x, ext);
    let vname = p.vars.name(v).to_owned();
    p.constraints.push(Constraint { expr: lo, desc: format!("1 <= {vname}") });
    p.constraints.push(Constraint { expr: hi, desc: format!("{vname} <= {extent}") });
    x
}

fn fresh_unroll_var(p: &mut Program, name: String, max: i64) -> ExprId {
    let v = p.vars.fresh(name);
    p.sched_vars.push(SchedVarInfo { var: v, kind: SchedVarKind::Unroll { max } });
    let x = p.pool.var(v);
    let one = p.pool.constf(1.0);
    let lo = p.pool.sub(one, x);
    let mx = p.pool.consti(max);
    let hi = p.pool.sub(x, mx);
    let vname = p.vars.name(v).to_owned();
    p.constraints.push(Constraint { expr: lo, desc: format!("1 <= {vname}") });
    p.constraints.push(Constraint { expr: hi, desc: format!("{vname} <= {max}") });
    x
}

/// Rounds a relaxed (real-valued) schedule-variable assignment to a valid
/// integer one (paper §3.3/§3.4):
///
/// - split variables of the same `(stage, axis)` are rounded greedily in
///   level order to factors of the remaining quotient, so their product
///   always divides the axis extent;
/// - unroll variables are rounded to the nearest power of two within range.
///
/// `raw` is indexed by [`felix_expr::VarId`]; entries for non-schedule
/// variables are passed through unchanged.
pub fn round_to_valid(program: &Program, raw: &[f64]) -> Vec<f64> {
    use felix_expr::factor::{round_split, round_to_factor};
    let mut out = raw.to_vec();
    // Group split variables by (stage, axis).
    let mut groups: std::collections::BTreeMap<(usize, u32), Vec<(u32, VarId)>> =
        std::collections::BTreeMap::new();
    for sv in &program.sched_vars {
        match sv.kind {
            SchedVarKind::Split { stage, axis, level, .. } => {
                groups.entry((stage, axis.0)).or_default().push((level, sv.var));
            }
            SchedVarKind::Unroll { max } => {
                let x = raw[sv.var.index()].max(1.0);
                let mut pow2 = 1i64;
                let mut best = 1i64;
                let mut best_d = f64::INFINITY;
                while pow2 <= max {
                    let d = ((pow2 as f64).ln() - x.ln()).abs();
                    if d < best_d {
                        best_d = d;
                        best = pow2;
                    }
                    pow2 *= 2;
                }
                out[sv.var.index()] = best as f64;
            }
        }
    }
    for ((stage, axis), mut vars) in groups {
        vars.sort_by_key(|&(level, _)| level);
        let extent = program.stages[stage].axis(crate::AxisId(axis)).extent as u64;
        let cands: Vec<f64> = vars.iter().map(|&(_, v)| raw[v.index()]).collect();
        if vars.len() == 1 {
            out[vars[0].1.index()] = round_to_factor(extent, cands[0]) as f64;
        } else {
            let rounded = round_split(extent, &cands);
            for (&(_, v), r) in vars.iter().zip(rounded) {
                out[v.index()] = r as f64;
            }
        }
    }
    out
}

/// Index of the anchor stage: the compute stage with the most work.
pub fn anchor_stage(p: &Program) -> usize {
    let mut best = 0;
    let mut best_work = -1.0;
    for (i, st) in p.stages.iter().enumerate() {
        if st.kind != StageKind::Compute {
            continue;
        }
        let iters: f64 = st.axes.iter().map(|a| a.extent as f64).product();
        let work = iters * st.op_counts.flops().max(0.5);
        if work > best_work {
            best_work = work;
            best = i;
        }
    }
    best
}

/// Total floating-point work of the naive program (constant).
pub fn total_flops(p: &Program) -> f64 {
    p.stages
        .iter()
        .map(|st| {
            let iters: f64 = st.axes.iter().map(|a| a.extent as f64).product();
            iters * st.op_counts.flops()
        })
        .sum()
}

/// Version tag of the sketch generator. Bump this string whenever sketch
/// generation changes shape — new rules, renamed sketches, different
/// variable counts or orderings — so persisted schedules tuned under the
/// old generator are detected as stale instead of silently misapplied.
pub const SKETCH_GENERATOR_VERSION: &str = "thread-bind+multi-level-tiling v1";

/// FNV-1a hash of [`SKETCH_GENERATOR_VERSION`] plus the sketch rule names:
/// the fingerprint a schedule store stamps on every entry. Two processes
/// agree on the hash iff they run the same sketch generator, which is what
/// makes a cached schedule's (sketch index, variable vector) meaningful.
/// Never zero, so a store entry without a fingerprint (written before
/// versioning existed) cannot masquerade as current.
pub fn generator_hash() -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    let mut mix = |bytes: &[u8]| {
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
    };
    mix(SKETCH_GENERATOR_VERSION.as_bytes());
    mix(b"\x00");
    mix(b"thread-bind");
    mix(b"\x00");
    mix(b"multi-level-tiling");
    if h == 0 {
        h = 1;
    }
    h
}

/// Generates the symbolic sketches for an initial (naive) program.
///
/// Mirrors Ansor's sketch rules for GPU: every subgraph gets the thread-bind
/// sketch; compute-intensive subgraphs with a reduction also get the
/// multi-level-tiling sketch.
pub fn generate_sketches(init: &Program, hw: &HardwareParams) -> Vec<Sketch> {
    let mut out = vec![thread_bind_sketch(init, hw)];
    let anchor = anchor_stage(init);
    let anchor_work: f64 = {
        let st = &init.stages[anchor];
        let iters: f64 = st.axes.iter().map(|a| a.extent as f64).product();
        iters * st.op_counts.flops().max(1.0)
    };
    if init.stages[anchor].has_reduction() && anchor_work >= (1 << 16) as f64 {
        out.push(multi_level_tiling_sketch(init, hw));
    }
    out
}

/// The simple sketch: bind spatial loops to the GPU grid, split the
/// innermost spatial axis into thread/vector levels, unroll pragma.
pub fn thread_bind_sketch(init: &Program, hw: &HardwareParams) -> Sketch {
    let mut p = init.clone();
    let mut steps = Vec::new();
    let anchor = anchor_stage(&p);

    let spatial: Vec<crate::AxisId> = p.stages[anchor]
        .axes
        .iter()
        .filter(|a| a.kind == AxisKind::Spatial)
        .map(|a| a.id)
        .collect();
    assert!(!spatial.is_empty(), "stage must have a spatial axis");
    // Split the last spatial axis (typically the contiguous one) into
    // [thread, vector] levels.
    let last = *spatial.last().expect("non-empty");
    let extent = p.stages[anchor].axis(last).extent;
    let t = fresh_split_var(&mut p, "TILE0".into(), anchor, last, extent, 0);
    let vlanes = fresh_split_var(&mut p, "VEC0".into(), anchor, last, extent, 1);
    let step = Step::Tile { stage: anchor, axis: last, factors: vec![t, vlanes] };
    apply(&mut p, &step);
    steps.push(step);

    // Bind: all spatial loops except the two new inner levels → blockIdx;
    // the thread level → threadIdx; the vector level → vectorize.
    let positions = axis_loop_positions(&p.stages[anchor], last);
    let (thread_pos, vec_pos) = (positions[1], positions[2]);
    for (pos, l) in p.stages[anchor].loops.clone().iter().enumerate() {
        let is_spatial = p.stages[anchor].axis(l.axis).kind == AxisKind::Spatial;
        if !is_spatial {
            continue;
        }
        let kind = if pos == thread_pos {
            LoopKind::ThreadIdx
        } else if pos == vec_pos {
            LoopKind::Vectorize
        } else {
            LoopKind::BlockIdx
        };
        let step = Step::Bind { stage: anchor, pos, kind };
        apply(&mut p, &step);
        steps.push(step);
    }

    // Unroll pragma over the remaining serial (reduction) loops.
    let u = fresh_unroll_var(&mut p, "UNROLL0".into(), hw.max_unroll);
    let step = Step::UnrollPragma { stage: anchor, max_step: u };
    apply(&mut p, &step);
    steps.push(step);

    // Fuse epilogue stages at the thread level.
    fuse_epilogues(&mut p, &mut steps, anchor, thread_pos);

    // Constraints: thread count and vector width limits.
    let threads = p.extent_product(anchor, LoopKind::ThreadIdx);
    let maxt = p.pool.consti(hw.max_threads_per_block);
    let c = p.pool.sub(threads, maxt);
    p.constraints.push(Constraint {
        expr: c,
        desc: format!("threads <= {}", hw.max_threads_per_block),
    });
    let lanes = p.extent_product(anchor, LoopKind::Vectorize);
    let maxl = p.pool.consti(hw.max_vector_lanes);
    let c = p.pool.sub(lanes, maxl);
    p.constraints.push(Constraint {
        expr: c,
        desc: format!("vector lanes <= {}", hw.max_vector_lanes),
    });

    Sketch { name: "thread-bind", program: p, steps }
}

/// The SSSRRSRS multi-level tiling sketch with shared-memory staging.
pub fn multi_level_tiling_sketch(init: &Program, hw: &HardwareParams) -> Sketch {
    let mut p = init.clone();
    let mut steps = Vec::new();
    let anchor = anchor_stage(&p);

    let spatial: Vec<crate::AxisId> = p.stages[anchor]
        .axes
        .iter()
        .filter(|a| a.kind == AxisKind::Spatial)
        .map(|a| a.id)
        .collect();
    let reductions: Vec<crate::AxisId> = p.stages[anchor]
        .axes
        .iter()
        .filter(|a| a.kind == AxisKind::Reduction)
        .map(|a| a.id)
        .collect();

    // Tile spatial axes with [vthread, thread, inner] (skip size-1 axes).
    let mut tiled_spatial = Vec::new();
    for &ax in &spatial {
        let extent = p.stages[anchor].axis(ax).extent;
        if extent <= 1 {
            continue;
        }
        let nm = p.stages[anchor].axis(ax).name.clone();
        let v1 = fresh_split_var(&mut p, format!("T{}1", nm.to_uppercase()), anchor, ax, extent, 0);
        let v2 = fresh_split_var(&mut p, format!("T{}2", nm.to_uppercase()), anchor, ax, extent, 1);
        let v3 = fresh_split_var(&mut p, format!("T{}3", nm.to_uppercase()), anchor, ax, extent, 2);
        let step = Step::Tile { stage: anchor, axis: ax, factors: vec![v1, v2, v3] };
        apply(&mut p, &step);
        steps.push(step);
        tiled_spatial.push(ax);
    }
    // Tile sizeable reduction axes into two levels.
    let mut tiled_reduction = Vec::new();
    for &ax in &reductions {
        let extent = p.stages[anchor].axis(ax).extent;
        if extent < 4 {
            continue;
        }
        let nm = p.stages[anchor].axis(ax).name.clone();
        let r1 = fresh_split_var(&mut p, format!("T{}1", nm.to_uppercase()), anchor, ax, extent, 0);
        let step = Step::Tile { stage: anchor, axis: ax, factors: vec![r1] };
        apply(&mut p, &step);
        steps.push(step);
        tiled_reduction.push(ax);
    }

    // Reorder into SSSRRSRS: [S0][S1][S2][R0][R1 + small reductions][S3].
    let level_of = |p: &Program, pos: usize| -> (u32, bool) {
        let st = &p.stages[anchor];
        let l = &st.loops[pos];
        let group = axis_loop_positions(st, l.axis);
        let level = group.iter().position(|&q| q == pos).expect("member") as u32;
        let is_red = st.axis(l.axis).kind == AxisKind::Reduction;
        (level, is_red)
    };
    let n = p.stages[anchor].loops.len();
    let mut order: Vec<usize> = Vec::with_capacity(n);
    let buckets: [(u32, bool); 3] = [(0, false), (1, false), (2, false)];
    for &(lvl, red) in &buckets {
        for pos in 0..n {
            let (l, r) = level_of(&p, pos);
            // Untiled spatial axes (extent 1) have a single level-0 loop.
            if r == red && l == lvl && !order.contains(&pos) {
                order.push(pos);
            }
        }
    }
    // Reduction outer (level 0 of tiled reductions), then all remaining
    // reduction loops, then remaining spatial (level 3).
    for pos in 0..n {
        let (l, r) = level_of(&p, pos);
        if r && l == 0 && !order.contains(&pos) {
            order.push(pos);
        }
    }
    for pos in 0..n {
        let (_, r) = level_of(&p, pos);
        if r && !order.contains(&pos) {
            order.push(pos);
        }
    }
    for pos in 0..n {
        if !order.contains(&pos) {
            order.push(pos);
        }
    }
    let step = Step::Reorder { stage: anchor, order: order.clone() };
    apply(&mut p, &step);
    steps.push(step);

    // Bind levels: S0 → blockIdx, S1 → vthread, S2 → threadIdx.
    let n_s = tiled_spatial.len() + spatial.len() - tiled_spatial.len(); // = spatial.len()
    let n_tiled = tiled_spatial.len();
    let mut pos = 0usize;
    for _ in 0..n_s {
        let step = Step::Bind { stage: anchor, pos, kind: LoopKind::BlockIdx };
        apply(&mut p, &step);
        steps.push(step);
        pos += 1;
    }
    for _ in 0..n_tiled {
        let step = Step::Bind { stage: anchor, pos, kind: LoopKind::VThread };
        apply(&mut p, &step);
        steps.push(step);
        pos += 1;
    }
    for _ in 0..n_tiled {
        let step = Step::Bind { stage: anchor, pos, kind: LoopKind::ThreadIdx };
        apply(&mut p, &step);
        steps.push(step);
        pos += 1;
    }
    let last_thread_pos = pos - 1;
    let n_r0 = tiled_reduction.len();
    let r0_positions: Vec<usize> = (pos..pos + n_r0).collect();

    // Cache-read staging of the anchor's global reads into shared memory.
    // Reload rounds = product of R0 extents; the staged tile covers every
    // non-block loop except those R0 loops.
    let rounds_exprs: Vec<ExprId> = r0_positions
        .iter()
        .map(|&q| p.stages[anchor].loops[q].extent)
        .collect();
    let rounds = p.pool.product(&rounds_exprs);
    let read_accesses: Vec<usize> = p.stages[anchor]
        .accesses
        .iter()
        .enumerate()
        .filter(|(_, a)| {
            a.kind == AccessKind::Read
                && p.buffers[a.buffer.0 as usize].scope == MemScope::Global
        })
        .map(|(i, _)| i)
        .collect();
    let mut shared_tiles = Vec::new();
    // Collect tile expressions first (they reference the anchor pre-insert).
    let mut cache_steps = Vec::new();
    for &acc in &read_accesses {
        let r0 = r0_positions.clone();
        let tile = p.footprint_elems(anchor, acc, &{
            let r0 = r0.clone();
            move |q, l| l.kind != LoopKind::BlockIdx && !r0.contains(&q)
        });
        shared_tiles.push(tile);
        cache_steps.push(Step::CacheRead {
            consumer: anchor,
            access_idx: acc,
            tile_elems: tile,
            rounds,
        });
    }
    // Apply cache reads; each insertion shifts the anchor index by one.
    let mut anchor_now = anchor;
    for mut step in cache_steps {
        if let Step::CacheRead { consumer, .. } = &mut step {
            *consumer = anchor_now;
        }
        apply(&mut p, &step);
        steps.push(step);
        anchor_now += 1;
    }

    // Unroll pragma on the anchor.
    let u = fresh_unroll_var(&mut p, "UNROLL0".into(), hw.max_unroll);
    let step = Step::UnrollPragma { stage: anchor_now, max_step: u };
    apply(&mut p, &step);
    steps.push(step);

    // Fuse epilogues at the last threadIdx loop of the anchor.
    fuse_epilogues(&mut p, &mut steps, anchor_now, last_thread_pos);

    // Constraints: threads per block within [16, max]; vthreads; shared mem.
    let threads = p.extent_product(anchor_now, LoopKind::ThreadIdx);
    let maxt = p.pool.consti(hw.max_threads_per_block);
    let hi = p.pool.sub(threads, maxt);
    p.constraints.push(Constraint {
        expr: hi,
        desc: format!("threads <= {}", hw.max_threads_per_block),
    });
    let mint = p.pool.consti(16);
    let lo = p.pool.sub(mint, threads);
    p.constraints.push(Constraint { expr: lo, desc: "threads >= 16".into() });
    let vthreads = p.extent_product(anchor_now, LoopKind::VThread);
    let maxv = p.pool.consti(hw.max_vthread * hw.max_vthread.max(1));
    let c = p.pool.sub(vthreads, maxv);
    p.constraints.push(Constraint {
        expr: c,
        desc: format!("vthreads <= {}", hw.max_vthread * hw.max_vthread),
    });
    if !shared_tiles.is_empty() {
        let dtype = 4i64;
        let total_tiles = p.pool.sum(&shared_tiles);
        let d = p.pool.consti(dtype);
        let bytes = p.pool.mul(total_tiles, d);
        let cap = p.pool.consti(hw.max_shared_bytes);
        let c = p.pool.sub(bytes, cap);
        p.constraints.push(Constraint {
            expr: c,
            desc: format!("shared memory <= {}", hw.max_shared_bytes),
        });
    }

    Sketch { name: "multi-level-tiling", program: p, steps }
}

/// Computes every non-anchor compute stage at `pos` of the anchor (greedy
/// epilogue fusion, as Ansor/TVM apply it).
fn fuse_epilogues(p: &mut Program, steps: &mut Vec<Step>, anchor: usize, pos: usize) {
    let n_spatial_anchor = p.stages[anchor]
        .axes
        .iter()
        .filter(|a| a.kind == AxisKind::Spatial)
        .count();
    for s in 0..p.stages.len() {
        if s == anchor || p.stages[s].kind != StageKind::Compute {
            continue;
        }
        if p.stages[s].compute_at.is_some() {
            continue;
        }
        let n_spatial = p.stages[s]
            .axes
            .iter()
            .filter(|a| a.kind == AxisKind::Spatial)
            .count();
        if n_spatial != n_spatial_anchor {
            continue;
        }
        let step = Step::ComputeAt { stage: s, target: anchor, pos };
        apply(p, &step);
        steps.push(step);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AccessPattern, AxisId, OpCounts};

    fn dense(n: i64, m: i64, k: i64) -> Program {
        let mut p = Program::new();
        let a = p.add_buffer("A", vec![n, k], 4, MemScope::Global);
        let b = p.add_buffer("B", vec![k, m], 4, MemScope::Global);
        let d = p.add_buffer("D", vec![n, m], 4, MemScope::Global);
        let (ai, aj, ak) = (AxisId(0), AxisId(1), AxisId(2));
        p.add_stage(
            "dense",
            vec![
                ("i".into(), n, AxisKind::Spatial),
                ("j".into(), m, AxisKind::Spatial),
                ("k".into(), k, AxisKind::Reduction),
            ],
            vec![
                AccessPattern { buffer: a, kind: AccessKind::Read, dims: vec![vec![(ai, 1)], vec![(ak, 1)]] },
                AccessPattern { buffer: b, kind: AccessKind::Read, dims: vec![vec![(ak, 1)], vec![(aj, 1)]] },
                AccessPattern { buffer: d, kind: AccessKind::Write, dims: vec![vec![(ai, 1)], vec![(aj, 1)]] },
            ],
            OpCounts { fadd: 1.0, fmul: 1.0, ..OpCounts::default() },
        );
        p
    }

    fn relu(n: i64, m: i64) -> Program {
        let mut p = Program::new();
        let a = p.add_buffer("X", vec![n, m], 4, MemScope::Global);
        let b = p.add_buffer("Y", vec![n, m], 4, MemScope::Global);
        let (ai, aj) = (AxisId(0), AxisId(1));
        p.add_stage(
            "relu",
            vec![("i".into(), n, AxisKind::Spatial), ("j".into(), m, AxisKind::Spatial)],
            vec![
                AccessPattern { buffer: a, kind: AccessKind::Read, dims: vec![vec![(ai, 1)], vec![(aj, 1)]] },
                AccessPattern { buffer: b, kind: AccessKind::Write, dims: vec![vec![(ai, 1)], vec![(aj, 1)]] },
            ],
            OpCounts { fcmp: 1.0, ..OpCounts::default() },
        );
        p
    }

    #[test]
    fn dense_gets_both_sketches() {
        let p = dense(512, 512, 512);
        let sketches = generate_sketches(&p, &HardwareParams::default());
        assert_eq!(sketches.len(), 2);
        assert_eq!(sketches[0].name, "thread-bind");
        assert_eq!(sketches[1].name, "multi-level-tiling");
    }

    #[test]
    fn elementwise_gets_only_thread_bind() {
        let p = relu(64, 1024);
        let sketches = generate_sketches(&p, &HardwareParams::default());
        assert_eq!(sketches.len(), 1);
        assert_eq!(sketches[0].name, "thread-bind");
    }

    #[test]
    fn thread_bind_sketch_shape() {
        let p = relu(64, 1024);
        let s = thread_bind_sketch(&p, &HardwareParams::default());
        let st = &s.program.stages[0];
        // Loops: i (blockIdx), j.0 (blockIdx), j.1 (threadIdx), j.2 (vec).
        assert_eq!(st.loops.len(), 4);
        assert_eq!(st.loops_of_kind(LoopKind::BlockIdx).len(), 2);
        assert_eq!(st.loops_of_kind(LoopKind::ThreadIdx).len(), 1);
        assert_eq!(st.loops_of_kind(LoopKind::Vectorize).len(), 1);
        // Two schedule vars: TILE0, VEC0, plus UNROLL0 = 3.
        assert_eq!(s.program.sched_vars.len(), 3);
        assert!(st.unroll_max_step.is_some());
    }

    #[test]
    fn multi_level_tiling_shape() {
        let p = dense(512, 512, 512);
        let s = multi_level_tiling_sketch(&p, &HardwareParams::default());
        let anchor = s
            .program
            .stages
            .iter()
            .position(|st| st.kind == StageKind::Compute)
            .expect("anchor");
        let st = &s.program.stages[anchor];
        // i: 4 levels, j: 4 levels, k: 2 levels = 10 loops.
        assert_eq!(st.loops.len(), 10);
        assert_eq!(st.loops_of_kind(LoopKind::BlockIdx).len(), 2);
        assert_eq!(st.loops_of_kind(LoopKind::VThread).len(), 2);
        assert_eq!(st.loops_of_kind(LoopKind::ThreadIdx).len(), 2);
        // 2 cache-read stages (A and B).
        let caches = s
            .program
            .stages
            .iter()
            .filter(|st| st.kind == StageKind::CacheRead)
            .count();
        assert_eq!(caches, 2);
        // Vars: 3 per spatial axis * 2 + 1 reduction + unroll = 8.
        assert_eq!(s.program.sched_vars.len(), 8);
        // Constraint list non-trivial (ranges + threads + shared mem).
        assert!(s.program.constraints.len() >= 8);
    }

    #[test]
    fn sketch_order_is_sssrrs() {
        let p = dense(256, 256, 256);
        let s = multi_level_tiling_sketch(&p, &HardwareParams::default());
        let anchor = s
            .program
            .stages
            .iter()
            .position(|st| st.kind == StageKind::Compute)
            .expect("anchor");
        let kinds: Vec<LoopKind> =
            s.program.stages[anchor].loops.iter().map(|l| l.kind).collect();
        assert_eq!(
            kinds,
            vec![
                LoopKind::BlockIdx,
                LoopKind::BlockIdx,
                LoopKind::VThread,
                LoopKind::VThread,
                LoopKind::ThreadIdx,
                LoopKind::ThreadIdx,
                LoopKind::Serial, // k.0
                LoopKind::Serial, // k.1
                LoopKind::Serial, // i.3
                LoopKind::Serial, // j.3
            ]
        );
    }

    #[test]
    fn constraints_reject_oversized_threads() {
        let p = dense(512, 512, 512);
        let s = multi_level_tiling_sketch(&p, &HardwareParams::default());
        let nv = s.program.vars.len();
        // All vars 1 → threads = 1 < 16: violates the lower bound.
        let vals = vec![1.0; nv];
        assert!(!s.program.constraints_ok(&vals, 0.0));
        // Reasonable point: vthread 1/1, threads 16x16, inner 2x2, k 8, u 16.
        // Var order: TI1,TI2,TI3, TJ1,TJ2,TJ3, TK1, UNROLL0.
        let vals = vec![1.0, 16.0, 2.0, 1.0, 16.0, 2.0, 8.0, 16.0];
        assert!(
            s.program.constraints_ok(&vals, 0.0),
            "violations: {:?}",
            s.program.violated_constraints(&vals, 0.0)
        );
        // 64x64 threads = 4096 > 1024: violates the upper bound.
        let vals = vec![1.0, 64.0, 2.0, 1.0, 64.0, 2.0, 8.0, 16.0];
        assert!(!s.program.constraints_ok(&vals, 0.0));
    }

    #[test]
    fn fused_epilogue_is_computed_at() {
        // Dense + bias-add epilogue.
        let mut p = dense(256, 256, 256);
        let c = p.add_buffer("C", vec![256], 4, MemScope::Global);
        let e = p.add_buffer("E", vec![256, 256], 4, MemScope::Global);
        let (ei, ej) = (AxisId(0), AxisId(1));
        p.add_stage(
            "bias",
            vec![("i".into(), 256, AxisKind::Spatial), ("j".into(), 256, AxisKind::Spatial)],
            vec![
                AccessPattern { buffer: c, kind: AccessKind::Read, dims: vec![vec![(ej, 1)]] },
                AccessPattern { buffer: e, kind: AccessKind::Write, dims: vec![vec![(ei, 1)], vec![(ej, 1)]] },
            ],
            OpCounts { fadd: 1.0, ..OpCounts::default() },
        );
        let s = multi_level_tiling_sketch(&p, &HardwareParams::default());
        let bias = s
            .program
            .stages
            .iter()
            .find(|st| st.name == "bias")
            .expect("bias stage");
        assert!(bias.compute_at.is_some());
    }

    #[test]
    fn rounding_yields_valid_divisible_schedule() {
        let p = dense(512, 384, 96);
        let s = multi_level_tiling_sketch(&p, &HardwareParams::default());
        // Perturbed, non-integral candidates.
        let raw = vec![1.3, 13.2, 2.7, 0.9, 17.5, 3.3, 7.2, 47.0];
        let rounded = round_to_valid(&s.program, &raw);
        // Split groups multiply to divisors of their extents.
        let i_prod = rounded[0] * rounded[1] * rounded[2];
        assert_eq!(512.0 % i_prod, 0.0, "i split {i_prod}");
        let j_prod = rounded[3] * rounded[4] * rounded[5];
        assert_eq!(384.0 % j_prod, 0.0, "j split {j_prod}");
        assert_eq!(96.0 % rounded[6], 0.0, "k split {}", rounded[6]);
        // Unroll is a power of two.
        let u = rounded[7] as i64;
        assert_eq!(u & (u - 1), 0, "unroll {u} must be a power of two");
        assert!((1..=512).contains(&u));
    }

    #[test]
    fn rounding_is_idempotent() {
        let p = dense(256, 256, 256);
        let s = multi_level_tiling_sketch(&p, &HardwareParams::default());
        let raw = vec![2.0, 8.0, 4.0, 2.0, 8.0, 4.0, 8.0, 64.0];
        let once = round_to_valid(&s.program, &raw);
        let twice = round_to_valid(&s.program, &once);
        assert_eq!(once, twice);
        assert_eq!(once, raw, "already-valid schedules are fixed points");
    }

    #[test]
    fn single_split_rounds_to_log_space_nearest_factor() {
        // The k axis of the tiling sketch has exactly one split variable
        // (var index 6, extent 96 here), so its rounding is a direct
        // round_to_factor call; check it against a brute-force search for
        // the factor nearest in log space.
        let p = dense(512, 384, 96);
        let s = multi_level_tiling_sketch(&p, &HardwareParams::default());
        let fs = felix_expr::factor::factors(96);
        for i in 0..60 {
            let x: f64 = 0.3 * 1.12f64.powi(i); // 0.3 .. ~170
            let mut raw = vec![2.0, 8.0, 4.0, 2.0, 8.0, 4.0, 0.0, 64.0];
            raw[6] = x;
            let rounded = round_to_valid(&s.program, &raw);
            let got = rounded[6] as u64;
            let dist = |f: u64| ((f as f64).ln() - x.max(1.0).ln()).abs();
            let best = fs.iter().copied().map(dist).fold(f64::INFINITY, f64::min);
            assert!(fs.contains(&got), "x={x} got={got}");
            assert!(
                (dist(got) - best).abs() < 1e-12,
                "x={x}: got factor {got} (log-dist {}), nearest is {best}",
                dist(got)
            );
        }
    }

    #[test]
    fn unroll_rounds_to_log_space_nearest_power_of_two() {
        let p = dense(256, 256, 256);
        let s = multi_level_tiling_sketch(&p, &HardwareParams::default());
        let pows: Vec<u64> = (0..10).map(|e| 1u64 << e).collect(); // 1..512
        for i in 0..50 {
            let x: f64 = 0.5 * 1.18f64.powi(i); // 0.5 .. ~2000 (past the cap)
            let mut raw = vec![2.0, 8.0, 4.0, 2.0, 8.0, 4.0, 8.0, 0.0];
            raw[7] = x;
            let rounded = round_to_valid(&s.program, &raw);
            let got = rounded[7] as u64;
            let dist = |f: u64| ((f as f64).ln() - x.max(1.0).ln()).abs();
            let best = pows.iter().copied().map(dist).fold(f64::INFINITY, f64::min);
            assert!(pows.contains(&got), "x={x} got={got}");
            assert!(
                (dist(got) - best).abs() < 1e-12,
                "x={x}: got {got}, log-dist {} vs best {best}",
                dist(got)
            );
        }
    }

    #[test]
    fn rounding_is_idempotent_on_random_points() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(0x2071D);
        for (m, k, n) in [(512, 384, 96), (96, 60, 210), (256, 256, 256)] {
            let p = dense(m, n, k);
            let s = multi_level_tiling_sketch(&p, &HardwareParams::default());
            let nv = s.program.vars.len();
            for _ in 0..64 {
                let raw: Vec<f64> = (0..nv).map(|_| rng.gen_range(-2.0f64..80.0)).collect();
                let once = round_to_valid(&s.program, &raw);
                let twice = round_to_valid(&s.program, &once);
                assert_eq!(once, twice, "raw {raw:?}");
                // Every rounded schedule variable is integral and in range.
                for sv in &s.program.sched_vars {
                    let v = once[sv.var.index()];
                    assert_eq!(v.fract(), 0.0);
                    assert!(v >= 1.0 && v <= sv.upper_bound() as f64);
                }
            }
        }
    }

    #[test]
    fn sched_var_metadata_round_trips() {
        let p = dense(512, 256, 128);
        let s = multi_level_tiling_sketch(&p, &HardwareParams::default());
        for sv in &s.program.sched_vars {
            match sv.kind {
                SchedVarKind::Split { extent, .. } => {
                    assert!([512, 256, 128].contains(&extent))
                }
                SchedVarKind::Unroll { max } => assert_eq!(max, 512),
            }
        }
    }
}
