//! Structural legality verification of (symbolic) programs.
//!
//! Schedule transformations must preserve a set of invariants for the
//! generated program to be meaningful; this verifier checks them and is run
//! by tests (and available to users extending the sketch rules):
//!
//! - **Coverage**: the loops of each axis multiply back to the axis extent
//!   (for any valid assignment) — splits neither drop nor duplicate work.
//! - **Multiplier consistency**: the stride multipliers of an axis's loops
//!   are the products of the extents of the inner levels of the same axis.
//! - **Binding order**: `blockIdx` loops precede `vthread` loops precede
//!   `threadIdx` loops in every nest (the CUDA launch hierarchy).
//! - **Reference validity**: `compute_at` targets exist and are acyclic;
//!   accesses reference existing buffers; cache stages carry their info.

use crate::{AxisKind, LoopKind, Program, StageKind};
use std::fmt;

/// A verification failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct VerifyError {
    /// Offending stage index.
    pub stage: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "stage {}: {}", self.stage, self.message)
    }
}

impl std::error::Error for VerifyError {}

/// Descending total order with every NaN ranked last. The verifier runs on
/// arbitrary (possibly poisoned) assignments, so a NaN multiplier must sort
/// deterministically and surface as a multiplier-consistency error — the
/// old `partial_cmp(..).expect("finite mult")` comparator aborted the whole
/// verification instead of reporting the offending loop. Local copy:
/// `felix-tir` sits below `felix-cost` (which hosts the shared comparators)
/// in the crate graph and cannot depend on it.
fn total_cmp_desc_nan_last(a: f64, b: f64) -> std::cmp::Ordering {
    match (a.is_nan(), b.is_nan()) {
        (true, true) => std::cmp::Ordering::Equal,
        (true, false) => std::cmp::Ordering::Greater,
        (false, true) => std::cmp::Ordering::Less,
        (false, false) => b.total_cmp(&a),
    }
}

/// Verifies all structural invariants at a concrete variable assignment
/// (coverage/multiplier checks need numeric values; pass a valid schedule).
pub fn verify(program: &Program, values: &[f64]) -> Result<(), Vec<VerifyError>> {
    let mut errors = Vec::new();
    let vals = program.pool.eval_all(values);
    let ev = |e: felix_expr::ExprId| vals[e.index()];

    for (si, st) in program.stages.iter().enumerate() {
        if st.kind == StageKind::CacheRead {
            if st.cache.is_none() {
                errors.push(VerifyError {
                    stage: si,
                    message: "cache-read stage without cache info".into(),
                });
            }
            continue;
        }
        // Coverage + multiplier consistency per axis.
        for axis in &st.axes {
            let loops: Vec<_> =
                st.loops.iter().filter(|l| l.axis == axis.id).collect();
            if st.compute_at.is_some() {
                // Fused stages cover only the host's inner tile; skip.
                continue;
            }
            if loops.is_empty() {
                errors.push(VerifyError {
                    stage: si,
                    message: format!("axis {} has no loop", axis.name),
                });
                continue;
            }
            let product: f64 = loops.iter().map(|l| ev(l.extent)).product();
            // The explicit `is_nan` arm keeps a NaN extent failing coverage
            // (it covers nothing) instead of slipping through because every
            // NaN comparison is false.
            let cover_diff = (product - axis.extent as f64).abs();
            if cover_diff > 1e-6 * axis.extent as f64 || cover_diff.is_nan() {
                errors.push(VerifyError {
                    stage: si,
                    message: format!(
                        "axis {} loops cover {product}, extent is {}",
                        axis.name, axis.extent
                    ),
                });
            }
            // The loop with the largest multiplier is outermost; each loop's
            // multiplier equals the product of extents of strictly-inner
            // loops of the same axis.
            let mut by_mult: Vec<_> = loops.iter().collect();
            by_mult.sort_by(|a, b| {
                total_cmp_desc_nan_last(ev(a.mult), ev(b.mult))
            });
            let mut inner_prod = 1.0;
            for l in by_mult.iter().rev() {
                let m = ev(l.mult);
                // NaN-failing form, same rationale as the coverage check.
                let mult_diff = (m - inner_prod).abs();
                if mult_diff > 1e-6 * inner_prod.max(1.0) || mult_diff.is_nan() {
                    errors.push(VerifyError {
                        stage: si,
                        message: format!(
                            "loop {} multiplier {m} != product of inner extents {inner_prod}",
                            l.name
                        ),
                    });
                    break;
                }
                inner_prod *= ev(l.extent);
            }
        }
        // Binding order: block ≤ vthread ≤ thread positions.
        let rank = |k: LoopKind| match k {
            LoopKind::BlockIdx => Some(0),
            LoopKind::VThread => Some(1),
            LoopKind::ThreadIdx => Some(2),
            _ => None,
        };
        let mut last_rank = 0;
        for l in &st.loops {
            if let Some(r) = rank(l.kind) {
                if r < last_rank {
                    errors.push(VerifyError {
                        stage: si,
                        message: format!(
                            "loop {} breaks the block/vthread/thread nesting order",
                            l.name
                        ),
                    });
                }
                last_rank = r;
            }
        }
        // compute_at references.
        if let Some((target, pos)) = st.compute_at {
            if target >= program.stages.len() {
                errors.push(VerifyError {
                    stage: si,
                    message: format!("compute_at target {target} out of range"),
                });
            } else {
                if program.stages[target].compute_at.is_some() {
                    errors.push(VerifyError {
                        stage: si,
                        message: "compute_at target is itself fused (cycle risk)".into(),
                    });
                }
                if pos >= program.stages[target].loops.len() {
                    errors.push(VerifyError {
                        stage: si,
                        message: format!("compute_at position {pos} out of range"),
                    });
                }
            }
        }
        // Access buffer ids.
        for a in &st.accesses {
            if a.buffer.0 as usize >= program.buffers.len() {
                errors.push(VerifyError {
                    stage: si,
                    message: format!("access references missing buffer {:?}", a.buffer),
                });
            }
        }
        // Reduction axes must never be bound to parallel hardware axes
        // (cross-thread reductions are out of this search space).
        for l in &st.loops {
            if l.kind.is_gpu_binding()
                && st.axis(l.axis).kind == AxisKind::Reduction
            {
                errors.push(VerifyError {
                    stage: si,
                    message: format!("reduction loop {} bound to {:?}", l.name, l.kind),
                });
            }
        }
    }
    if errors.is_empty() {
        Ok(())
    } else {
        Err(errors)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sketch::{generate_sketches, round_to_valid, HardwareParams};
    use crate::steps::{apply, Step};
    use crate::{AccessKind, AccessPattern, AxisId, MemScope, OpCounts};

    fn dense(n: i64, m: i64, k: i64) -> Program {
        let mut p = Program::new();
        let a = p.add_buffer("A", vec![n, k], 4, MemScope::Global);
        let b = p.add_buffer("B", vec![k, m], 4, MemScope::Global);
        let d = p.add_buffer("D", vec![n, m], 4, MemScope::Global);
        let (ai, aj, ak) = (AxisId(0), AxisId(1), AxisId(2));
        p.add_stage(
            "dense",
            vec![
                ("i".into(), n, AxisKind::Spatial),
                ("j".into(), m, AxisKind::Spatial),
                ("k".into(), k, AxisKind::Reduction),
            ],
            vec![
                AccessPattern { buffer: a, kind: AccessKind::Read, dims: vec![vec![(ai, 1)], vec![(ak, 1)]] },
                AccessPattern { buffer: b, kind: AccessKind::Read, dims: vec![vec![(ak, 1)], vec![(aj, 1)]] },
                AccessPattern { buffer: d, kind: AccessKind::Write, dims: vec![vec![(ai, 1)], vec![(aj, 1)]] },
            ],
            OpCounts { fadd: 1.0, fmul: 1.0, ..OpCounts::default() },
        );
        p
    }

    #[test]
    fn naive_program_verifies() {
        let p = dense(64, 64, 64);
        assert_eq!(verify(&p, &[]), Ok(()));
    }

    #[test]
    fn generated_sketches_verify_at_valid_schedules() {
        let p0 = dense(512, 384, 256);
        for sk in generate_sketches(&p0, &HardwareParams::default()) {
            let vals = round_to_valid(
                &sk.program,
                &vec![2.0; sk.program.vars.len()],
            );
            if let Err(errs) = verify(&sk.program, &vals) {
                panic!("{} sketch fails verification: {errs:?}", sk.name);
            }
        }
    }

    #[test]
    fn detects_dropped_axis_coverage() {
        let mut p = dense(64, 64, 64);
        // Corrupt: shrink a loop extent so the axis is under-covered.
        let half = p.pool.consti(32);
        p.stages[0].loops[0].extent = half;
        let errs = verify(&p, &[]).unwrap_err();
        assert!(errs.iter().any(|e| e.message.contains("cover")));
    }

    #[test]
    fn detects_wrong_multiplier() {
        let mut p = dense(64, 64, 64);
        let t = p.vars.fresh("T");
        let x = p.pool.var(t);
        apply(&mut p, &Step::Tile { stage: 0, axis: AxisId(0), factors: vec![x] });
        // Corrupt the inner loop's multiplier.
        let bad = p.pool.consti(3);
        let pos = p.stages[0].loops.iter().position(|l| l.name == "i.1").unwrap();
        p.stages[0].loops[pos].mult = bad;
        let errs = verify(&p, &[8.0]).unwrap_err();
        assert!(errs.iter().any(|e| e.message.contains("multiplier")));
    }

    #[test]
    fn detects_binding_order_violation() {
        let mut p = dense(64, 64, 64);
        apply(&mut p, &Step::Bind { stage: 0, pos: 0, kind: LoopKind::ThreadIdx });
        apply(&mut p, &Step::Bind { stage: 0, pos: 1, kind: LoopKind::BlockIdx });
        let errs = verify(&p, &[]).unwrap_err();
        assert!(errs.iter().any(|e| e.message.contains("nesting order")));
    }

    #[test]
    fn detects_parallel_reduction() {
        let mut p = dense(64, 64, 64);
        apply(&mut p, &Step::Bind { stage: 0, pos: 2, kind: LoopKind::ThreadIdx });
        let errs = verify(&p, &[]).unwrap_err();
        assert!(errs.iter().any(|e| e.message.contains("reduction loop")));
    }
}
