//! A loop-nest tensor IR with symbolic extents — the substrate playing the
//! role TVM's TIR plays for the original Felix.
//!
//! A [`Program`] is a list of [`Stage`]s (one per tensor computation, e.g.
//! the matmul stage and the bias-add stage of a Dense-Add subgraph). Each
//! stage carries:
//!
//! - its original iteration [`Axis`] list (spatial + reduction),
//! - a current loop nest ([`Loop`]s, outer→inner) whose extents are
//!   *expressions* over schedule variables,
//! - buffer [`AccessPattern`]s (which axes index which buffer dimension with
//!   what stride) from which tile footprints are derived symbolically,
//! - per-innermost-iteration operation counts ([`OpCounts`]).
//!
//! Schedule transformations live in [`steps`], Ansor-style sketch generation
//! in [`sketch`], and a Fig.-3-style pretty printer in [`pretty`].

pub mod pretty;
pub mod sketch;
pub mod steps;
pub mod verify;

pub use sketch::{generate_sketches, HardwareParams, SchedVarInfo, SchedVarKind};
pub use steps::Step;
pub use verify::{verify, VerifyError};

use felix_expr::{ExprId, ExprPool, VarTable};

/// Identifier of an original iteration axis within a stage.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct AxisId(pub u32);

/// Identifier of a buffer within a [`Program`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct BufId(pub u32);

/// Whether an axis is spatial (parallelizable) or a reduction.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AxisKind {
    /// Output-space axis; iterations are independent.
    Spatial,
    /// Reduction axis; iterations accumulate.
    Reduction,
}

/// One original iteration axis of a stage.
#[derive(Clone, Debug)]
pub struct Axis {
    /// Stable id referenced by loops and access patterns.
    pub id: AxisId,
    /// Human-readable name (`i`, `k`, `rc`, ...).
    pub name: String,
    /// Concrete extent (problem sizes are known at schedule time).
    pub extent: i64,
    /// Spatial or reduction.
    pub kind: AxisKind,
}

/// Memory scope of a buffer.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum MemScope {
    /// Device global memory.
    Global,
    /// Per-block shared memory (from `cache_read`).
    Shared,
    /// Per-thread registers/local memory.
    Local,
}

/// A tensor buffer.
#[derive(Clone, Debug)]
pub struct Buffer {
    /// Stable id referenced by access patterns.
    pub id: BufId,
    /// Name for printing.
    pub name: String,
    /// Bytes per element (4 for f32).
    pub dtype_bytes: u32,
    /// Concrete dimension sizes.
    pub dims: Vec<i64>,
    /// Memory scope.
    pub scope: MemScope,
}

impl Buffer {
    /// Total elements in the buffer.
    pub fn elems(&self) -> i64 {
        self.dims.iter().product()
    }

    /// Total bytes of the buffer.
    pub fn bytes(&self) -> i64 {
        self.elems() * self.dtype_bytes as i64
    }
}

/// Read or write.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AccessKind {
    /// Load.
    Read,
    /// Store.
    Write,
}

/// How a stage indexes a buffer: for each buffer dimension, the list of
/// `(axis, stride)` terms whose linear combination forms the index.
///
/// Example: `A[i, k]` in a matmul is
/// `dims = [[(i, 1)], [(k, 1)]]`; a conv input `In[n, c, h*s + r]` gives a
/// last dimension `[(h, s), (r, 1)]`.
#[derive(Clone, Debug)]
pub struct AccessPattern {
    /// The accessed buffer.
    pub buffer: BufId,
    /// Read or write.
    pub kind: AccessKind,
    /// Per-dimension `(axis, stride)` contributions.
    pub dims: Vec<Vec<(AxisId, i64)>>,
}

/// Operation counts per innermost iteration of a stage.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct OpCounts {
    /// Floating-point additions (includes the add of a MAC).
    pub fadd: f64,
    /// Floating-point multiplications.
    pub fmul: f64,
    /// Floating-point divisions.
    pub fdiv: f64,
    /// Transcendental / special function calls (exp, tanh, rsqrt, ...).
    pub fspecial: f64,
    /// Floating-point comparisons (max-pool, ReLU, ...).
    pub fcmp: f64,
    /// Integer ALU operations (address arithmetic not counted here).
    pub iops: f64,
}

impl OpCounts {
    /// Total floating-point operations per iteration.
    pub fn flops(&self) -> f64 {
        self.fadd + self.fmul + self.fdiv + self.fspecial + self.fcmp
    }

    /// Component-wise sum.
    pub fn merge(&self, o: &OpCounts) -> OpCounts {
        OpCounts {
            fadd: self.fadd + o.fadd,
            fmul: self.fmul + o.fmul,
            fdiv: self.fdiv + o.fdiv,
            fspecial: self.fspecial + o.fspecial,
            fcmp: self.fcmp + o.fcmp,
            iops: self.iops + o.iops,
        }
    }
}

/// The execution binding / annotation of a loop.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum LoopKind {
    /// Plain sequential loop.
    Serial,
    /// Unrolled loop.
    Unroll,
    /// Vectorized loop.
    Vectorize,
    /// CPU-style parallel loop (used by host-side stages).
    Parallel,
    /// Bound to CUDA `blockIdx`. Multiple block loops multiply into the grid.
    BlockIdx,
    /// Bound to CUDA `threadIdx`. Multiple thread loops multiply into the block.
    ThreadIdx,
    /// TVM virtual thread (striding thread) loop.
    VThread,
}

impl LoopKind {
    /// True for the GPU-bound kinds (not actually iterated serially).
    pub fn is_gpu_binding(self) -> bool {
        matches!(self, LoopKind::BlockIdx | LoopKind::ThreadIdx | LoopKind::VThread)
    }
}

/// One loop of a stage's current nest.
#[derive(Clone, Debug)]
pub struct Loop {
    /// The original axis this loop iterates a chunk of.
    pub axis: AxisId,
    /// Symbolic trip count.
    pub extent: ExprId,
    /// Symbolic stride of this loop on its axis (product of inner extents of
    /// the same axis); the innermost chunk has multiplier 1.
    pub mult: ExprId,
    /// Binding / annotation.
    pub kind: LoopKind,
    /// Name for printing (`i.0`, `k.1`, ...).
    pub name: String,
}

/// Role of a stage within a program.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum StageKind {
    /// An ordinary tensor computation.
    Compute,
    /// A `cache_read` staging copy (global → shared).
    CacheRead,
}

/// Symbolic description of a `cache_read` staging stage.
#[derive(Clone, Copy, Debug)]
pub struct CacheReadInfo {
    /// The global buffer being staged.
    pub src: BufId,
    /// The shared-memory destination buffer.
    pub shared: BufId,
    /// Elements loaded into shared memory per reload round, per block.
    pub tile_elems: ExprId,
    /// Reload rounds per block (trip count of the outer reduction level).
    pub rounds: ExprId,
}

/// One computation of the program and its current loop nest.
#[derive(Clone, Debug)]
pub struct Stage {
    /// Name for printing.
    pub name: String,
    /// Original iteration axes.
    pub axes: Vec<Axis>,
    /// Current loop nest, outer → inner.
    pub loops: Vec<Loop>,
    /// Buffer accesses.
    pub accesses: Vec<AccessPattern>,
    /// Per-innermost-iteration operation counts.
    pub op_counts: OpCounts,
    /// Role of the stage.
    pub kind: StageKind,
    /// `Some((target_stage, loop_pos))` if computed inside another stage's
    /// nest (operator fusion); its loop nest then covers only the target's
    /// inner tile.
    pub compute_at: Option<(usize, usize)>,
    /// Maximum automatic unrolling step (pragma), if annotated.
    pub unroll_max_step: Option<ExprId>,
    /// Present iff `kind == StageKind::CacheRead`.
    pub cache: Option<CacheReadInfo>,
}

impl Stage {
    /// Returns the axis metadata for `id`.
    ///
    /// # Panics
    ///
    /// Panics if the axis does not belong to this stage.
    pub fn axis(&self, id: AxisId) -> &Axis {
        self.axes
            .iter()
            .find(|a| a.id == id)
            .expect("axis id not in stage")
    }

    /// Whether any axis of this stage is a reduction.
    pub fn has_reduction(&self) -> bool {
        self.axes.iter().any(|a| a.kind == AxisKind::Reduction)
    }

    /// Positions of loops with the given kind.
    pub fn loops_of_kind(&self, kind: LoopKind) -> Vec<usize> {
        self.loops
            .iter()
            .enumerate()
            .filter(|(_, l)| l.kind == kind)
            .map(|(i, _)| i)
            .collect()
    }
}

/// A validity constraint `expr <= 0` tracked alongside the schedule
/// (paper §3.2/§3.3); violated constraints make a schedule illegal.
#[derive(Clone, Debug)]
pub struct Constraint {
    /// Valid iff this expression evaluates `<= 0`.
    pub expr: ExprId,
    /// Human-readable description.
    pub desc: String,
}

/// A tensor program: buffers + stages + the expression pool their symbolic
/// extents live in, plus the schedule variables and constraints introduced
/// by scheduling.
#[derive(Clone, Debug, Default)]
pub struct Program {
    /// Expression pool for all symbolic quantities of this program.
    pub pool: ExprPool,
    /// Variable names (schedule variables).
    pub vars: VarTable,
    /// Buffers.
    pub buffers: Vec<Buffer>,
    /// Stages in execution order.
    pub stages: Vec<Stage>,
    /// Validity constraints (`expr <= 0`).
    pub constraints: Vec<Constraint>,
    /// Metadata for every schedule variable (for sampling and rounding).
    pub sched_vars: Vec<sketch::SchedVarInfo>,
}

impl Program {
    /// An empty program.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a buffer and returns its id.
    pub fn add_buffer(
        &mut self,
        name: impl Into<String>,
        dims: Vec<i64>,
        dtype_bytes: u32,
        scope: MemScope,
    ) -> BufId {
        let id = BufId(self.buffers.len() as u32);
        self.buffers.push(Buffer { id, name: name.into(), dtype_bytes, dims, scope });
        id
    }

    /// Adds a compute stage with one serial loop per axis (the naive nest of
    /// the mathematical definition — program `p0` of the paper).
    pub fn add_stage(
        &mut self,
        name: impl Into<String>,
        axes: Vec<(String, i64, AxisKind)>,
        accesses: Vec<AccessPattern>,
        op_counts: OpCounts,
    ) -> usize {
        let axes: Vec<Axis> = axes
            .into_iter()
            .enumerate()
            .map(|(i, (name, extent, kind))| Axis {
                id: AxisId(i as u32),
                name,
                extent,
                kind,
            })
            .collect();
        let one = self.pool.constf(1.0);
        let loops = axes
            .iter()
            .map(|a| Loop {
                axis: a.id,
                extent: self.pool.consti(a.extent),
                mult: one,
                kind: LoopKind::Serial,
                name: a.name.clone(),
            })
            .collect();
        self.stages.push(Stage {
            name: name.into(),
            axes,
            loops,
            accesses,
            op_counts,
            kind: StageKind::Compute,
            compute_at: None,
            unroll_max_step: None,
            cache: None,
        });
        self.stages.len() - 1
    }

    /// The buffer a stage writes, if any.
    pub fn written_buffer(&self, stage: usize) -> Option<BufId> {
        self.stages[stage]
            .accesses
            .iter()
            .find(|a| a.kind == AccessKind::Write)
            .map(|a| a.buffer)
    }

    /// Symbolic product of all loop extents of a stage (total iterations).
    pub fn total_iters(&mut self, stage: usize) -> ExprId {
        let exts: Vec<ExprId> = self.stages[stage].loops.iter().map(|l| l.extent).collect();
        self.pool.product(&exts)
    }

    /// Symbolic product of extents of loops with the given kind.
    pub fn extent_product(&mut self, stage: usize, kind: LoopKind) -> ExprId {
        let exts: Vec<ExprId> = self.stages[stage]
            .loops
            .iter()
            .filter(|l| l.kind == kind)
            .map(|l| l.extent)
            .collect();
        self.pool.product(&exts)
    }

    /// Symbolic tile footprint (in elements) of one access, counting the
    /// loops selected by `include(position, loop)`.
    ///
    /// Uses the rectangular-hull approximation: per buffer dimension,
    /// `Σ_loops (extent−1)·mult·stride + 1`, multiplied across dimensions.
    /// Exact for the affine accesses this IR expresses.
    pub fn footprint_elems(
        &mut self,
        stage: usize,
        access_idx: usize,
        include: &dyn Fn(usize, &Loop) -> bool,
    ) -> ExprId {
        let access = self.stages[stage].accesses[access_idx].clone();
        let loops: Vec<(usize, Loop)> = self.stages[stage]
            .loops
            .iter()
            .cloned()
            .enumerate()
            .collect();
        let one = self.pool.constf(1.0);
        let mut dim_sizes = Vec::with_capacity(access.dims.len());
        for contributions in &access.dims {
            let mut span = self.pool.constf(0.0);
            for &(axis, stride) in contributions {
                for (pos, l) in &loops {
                    if l.axis == axis && include(*pos, l) {
                        // (extent - 1) * mult * |stride|
                        let em1 = self.pool.sub(l.extent, one);
                        let m = self.pool.mul(em1, l.mult);
                        let s = self.pool.consti(stride.abs());
                        let c = self.pool.mul(m, s);
                        span = self.pool.add(span, c);
                    }
                }
            }
            let size = self.pool.add(span, one);
            dim_sizes.push(size);
        }
        self.pool.product(&dim_sizes)
    }

    /// Evaluates all constraints at `values`; returns true when every
    /// constraint satisfies `expr <= tol`.
    pub fn constraints_ok(&self, values: &[f64], tol: f64) -> bool {
        if self.constraints.is_empty() {
            return true;
        }
        let vals = self.pool.eval_all(values);
        self.constraints
            .iter()
            .all(|c| vals[c.expr.index()] <= tol)
    }

    /// Names and descriptions of violated constraints at `values`.
    pub fn violated_constraints(&self, values: &[f64], tol: f64) -> Vec<&str> {
        let vals = self.pool.eval_all(values);
        self.constraints
            .iter()
            .filter(|c| vals[c.expr.index()] > tol)
            .map(|c| c.desc.as_str())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A naive Dense (matmul) initial program, the paper's Fig. 3 example.
    pub(crate) fn dense_program(n: i64, m: i64, k: i64) -> Program {
        let mut p = Program::new();
        let a = p.add_buffer("A", vec![n, k], 4, MemScope::Global);
        let b = p.add_buffer("B", vec![k, m], 4, MemScope::Global);
        let d = p.add_buffer("D", vec![n, m], 4, MemScope::Global);
        let (ai, aj, ak) = (AxisId(0), AxisId(1), AxisId(2));
        p.add_stage(
            "dense",
            vec![
                ("i".into(), n, AxisKind::Spatial),
                ("j".into(), m, AxisKind::Spatial),
                ("k".into(), k, AxisKind::Reduction),
            ],
            vec![
                AccessPattern {
                    buffer: a,
                    kind: AccessKind::Read,
                    dims: vec![vec![(ai, 1)], vec![(ak, 1)]],
                },
                AccessPattern {
                    buffer: b,
                    kind: AccessKind::Read,
                    dims: vec![vec![(ak, 1)], vec![(aj, 1)]],
                },
                AccessPattern {
                    buffer: d,
                    kind: AccessKind::Write,
                    dims: vec![vec![(ai, 1)], vec![(aj, 1)]],
                },
            ],
            OpCounts { fadd: 1.0, fmul: 1.0, ..OpCounts::default() },
        );
        p
    }

    #[test]
    fn naive_program_structure() {
        let p = dense_program(64, 128, 256);
        assert_eq!(p.stages.len(), 1);
        assert_eq!(p.stages[0].loops.len(), 3);
        assert!(p.stages[0].has_reduction());
        assert_eq!(p.buffers.len(), 3);
        assert_eq!(p.buffers[0].bytes(), 64 * 256 * 4);
    }

    #[test]
    fn total_iters_of_naive_dense() {
        let mut p = dense_program(64, 128, 256);
        let t = p.total_iters(0);
        assert_eq!(p.pool.eval(t, &[]), (64 * 128 * 256) as f64);
    }

    #[test]
    fn footprint_full_nest_equals_buffer_slice() {
        let mut p = dense_program(64, 128, 256);
        // A[i,k] over the whole nest: 64 * 256 elements.
        let fp = p.footprint_elems(0, 0, &|_, _| true);
        assert_eq!(p.pool.eval(fp, &[]), (64 * 256) as f64);
        // B[k,j]: 256 * 128.
        let fp = p.footprint_elems(0, 1, &|_, _| true);
        assert_eq!(p.pool.eval(fp, &[]), (256 * 128) as f64);
    }

    #[test]
    fn footprint_partial_nest() {
        let mut p = dense_program(64, 128, 256);
        // Only the innermost (k) loop: A tile is 1x256, B tile 256x1.
        let fp_a = p.footprint_elems(0, 0, &|pos, _| pos == 2);
        assert_eq!(p.pool.eval(fp_a, &[]), 256.0);
        let fp_d = p.footprint_elems(0, 2, &|pos, _| pos == 2);
        assert_eq!(p.pool.eval(fp_d, &[]), 1.0, "write tile ignores k");
    }

    #[test]
    fn strided_access_footprint() {
        // Conv-like: In[h*2 + r] with h in [0,4), r in [0,3): span = 3*2+2+1.
        let mut p = Program::new();
        let b = p.add_buffer("In", vec![64], 4, MemScope::Global);
        p.add_stage(
            "conv1d",
            vec![
                ("h".into(), 4, AxisKind::Spatial),
                ("r".into(), 3, AxisKind::Reduction),
            ],
            vec![AccessPattern {
                buffer: b,
                kind: AccessKind::Read,
                dims: vec![vec![(AxisId(0), 2), (AxisId(1), 1)]],
            }],
            OpCounts { fadd: 1.0, fmul: 1.0, ..OpCounts::default() },
        );
        let fp = p.footprint_elems(0, 0, &|_, _| true);
        assert_eq!(p.pool.eval(fp, &[]), (3 * 2 + 2 + 1) as f64);
    }

    #[test]
    fn constraints_check() {
        let mut p = dense_program(8, 8, 8);
        let v = p.vars.fresh("T");
        let x = p.pool.var(v);
        let eight = p.pool.constf(8.0);
        // Constraint: x - 8 <= 0, i.e. x <= 8.
        let c = p.pool.sub(x, eight);
        p.constraints.push(Constraint { expr: c, desc: "T <= 8".into() });
        assert!(p.constraints_ok(&[4.0], 0.0));
        assert!(!p.constraints_ok(&[9.0], 0.0));
        assert_eq!(p.violated_constraints(&[9.0], 0.0), vec!["T <= 8"]);
    }

    #[test]
    fn extent_product_by_kind() {
        let mut p = dense_program(64, 128, 256);
        // All loops serial: serial product = everything, blockIdx product = 1.
        let s = p.extent_product(0, LoopKind::Serial);
        assert_eq!(p.pool.eval(s, &[]), (64 * 128 * 256) as f64);
        let b = p.extent_product(0, LoopKind::BlockIdx);
        assert_eq!(p.pool.eval(b, &[]), 1.0);
    }
}
