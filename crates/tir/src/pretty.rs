//! Pretty-printing of (symbolic) programs, in the style of the paper's
//! Fig. 3 right column.

use crate::{LoopKind, Program, StageKind};
use std::fmt::Write as _;

impl Program {
    /// Renders the program as a nested-loop listing. Loop extents are shown
    /// symbolically; pass `values` to also show the evaluated extents.
    pub fn pretty(&self, values: Option<&[f64]>) -> String {
        let evald = values.map(|v| self.pool.eval_all(v));
        let mut out = String::new();
        for (si, st) in self.stages.iter().enumerate() {
            if st.kind == StageKind::CacheRead {
                let info = st.cache.expect("cache info");
                let src = &self.buffers[info.src.0 as usize].name;
                let dst = &self.buffers[info.shared.0 as usize].name;
                let _ = write!(out, "// stage {si}: {} ({src} -> {dst}", st.name);
                if let Some(vals) = &evald {
                    let _ = write!(
                        out,
                        ", {} elems x {} rounds",
                        vals[info.tile_elems.index()] as i64,
                        vals[info.rounds.index()] as i64
                    );
                }
                let _ = writeln!(out, ")");
                continue;
            }
            let _ = write!(out, "// stage {si}: {}", st.name);
            if let Some((t, pos)) = st.compute_at {
                let _ = write!(out, " (compute_at stage {t}, loop {pos})");
            }
            let _ = writeln!(out);
            let mut depth = 0usize;
            for l in &st.loops {
                let ann = match l.kind {
                    LoopKind::Serial => String::new(),
                    LoopKind::Unroll => " // unroll".into(),
                    LoopKind::Vectorize => " // vectorize".into(),
                    LoopKind::Parallel => " // parallel".into(),
                    LoopKind::BlockIdx => " // blockIdx.x".into(),
                    LoopKind::ThreadIdx => " // threadIdx.x".into(),
                    LoopKind::VThread => " // vthread".into(),
                };
                let extent = match &evald {
                    Some(vals) => format!("{}", vals[l.extent.index()] as i64),
                    None => format!("{}", self.pool.display(l.extent, &self.vars)),
                };
                let _ = writeln!(
                    out,
                    "{}for {} in (0, {}){}",
                    "  ".repeat(depth + 1),
                    l.name,
                    extent,
                    ann
                );
                depth += 1;
            }
            if let Some(u) = st.unroll_max_step {
                let s = match &evald {
                    Some(vals) => format!("{}", vals[u.index()] as i64),
                    None => format!("{}", self.pool.display(u, &self.vars)),
                };
                let _ = writeln!(out, "{}// auto_unroll({s})", "  ".repeat(depth + 1));
            }
            let _ = writeln!(out, "{}<body: {}>", "  ".repeat(depth + 1), st.name);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use crate::sketch::{multi_level_tiling_sketch, HardwareParams};
    use crate::{AccessKind, AccessPattern, AxisId, AxisKind, MemScope, OpCounts, Program};

    fn dense(n: i64, m: i64, k: i64) -> Program {
        let mut p = Program::new();
        let a = p.add_buffer("A", vec![n, k], 4, MemScope::Global);
        let b = p.add_buffer("B", vec![k, m], 4, MemScope::Global);
        let d = p.add_buffer("D", vec![n, m], 4, MemScope::Global);
        let (ai, aj, ak) = (AxisId(0), AxisId(1), AxisId(2));
        p.add_stage(
            "dense",
            vec![
                ("i".into(), n, AxisKind::Spatial),
                ("j".into(), m, AxisKind::Spatial),
                ("k".into(), k, AxisKind::Reduction),
            ],
            vec![
                AccessPattern { buffer: a, kind: AccessKind::Read, dims: vec![vec![(ai, 1)], vec![(ak, 1)]] },
                AccessPattern { buffer: b, kind: AccessKind::Read, dims: vec![vec![(ak, 1)], vec![(aj, 1)]] },
                AccessPattern { buffer: d, kind: AccessKind::Write, dims: vec![vec![(ai, 1)], vec![(aj, 1)]] },
            ],
            OpCounts { fadd: 1.0, fmul: 1.0, ..OpCounts::default() },
        );
        p
    }

    #[test]
    fn symbolic_pretty_mentions_vars() {
        let p = dense(512, 512, 512);
        let s = multi_level_tiling_sketch(&p, &HardwareParams::default());
        let txt = s.program.pretty(None);
        assert!(txt.contains("blockIdx.x"), "{txt}");
        assert!(txt.contains("threadIdx.x"), "{txt}");
        assert!(txt.contains("vthread"), "{txt}");
        assert!(txt.contains("TI1"), "{txt}");
        assert!(txt.contains("auto_unroll"), "{txt}");
    }

    #[test]
    fn concrete_pretty_shows_numbers() {
        let p = dense(512, 512, 512);
        let s = multi_level_tiling_sketch(&p, &HardwareParams::default());
        // TI1,TI2,TI3, TJ1,TJ2,TJ3, TK1, UNROLL0
        let vals = vec![2.0, 8.0, 4.0, 2.0, 8.0, 4.0, 8.0, 64.0];
        let txt = s.program.pretty(Some(&vals));
        // i.0 extent = 512/(2*8*4) = 8.
        assert!(txt.contains("for i.0 in (0, 8)"), "{txt}");
        assert!(txt.contains("auto_unroll(64)"), "{txt}");
    }
}
