//! Schedule transformation steps — the `T(p0, s)` pipeline of the paper.
//!
//! A schedule is a sequence of [`Step`]s whose parameters may be symbolic
//! expressions (schedule variables), making the transformed program a
//! *symbolic program* in the paper's sense. [`apply`] runs a step against a
//! [`Program`]; [`apply_all`] runs a whole schedule.

use crate::{
    AccessKind, AxisId, AxisKind, CacheReadInfo, Loop, LoopKind, MemScope, Program,
    Stage, StageKind,
};
use felix_expr::ExprId;

/// One schedule transformation with (possibly symbolic) parameters.
#[derive(Clone, Debug)]
pub enum Step {
    /// Splits the loop of `axis` into `1 + factors.len()` nested loops; the
    /// derived outer extent is `extent / Π factors` and `factors` are listed
    /// outer → inner.
    Tile {
        /// Target stage.
        stage: usize,
        /// Axis whose (single) loop is split.
        axis: AxisId,
        /// Inner level extents, outer → inner.
        factors: Vec<ExprId>,
    },
    /// Permutes the loop nest: `order[i]` is the old position of the loop
    /// that moves to position `i`.
    Reorder {
        /// Target stage.
        stage: usize,
        /// Permutation of current loop positions.
        order: Vec<usize>,
    },
    /// Sets the binding/annotation of the loop at `pos`.
    Bind {
        /// Target stage.
        stage: usize,
        /// Loop position.
        pos: usize,
        /// New binding.
        kind: LoopKind,
    },
    /// Annotates the stage with an auto-unroll pragma of `max_step`.
    UnrollPragma {
        /// Target stage.
        stage: usize,
        /// Maximum unroll step (usually a schedule variable).
        max_step: ExprId,
    },
    /// Computes `stage` inside `target`'s nest right after loop `pos`
    /// (operator fusion); the stage's nest is rebuilt to cover the target's
    /// inner spatial tile.
    ComputeAt {
        /// The stage being moved.
        stage: usize,
        /// The stage whose nest hosts it.
        target: usize,
        /// Loop position in `target` after which `stage` runs.
        pos: usize,
    },
    /// Inserts a `cache_read` staging stage copying `access_idx` of
    /// `consumer` from global to shared memory.
    CacheRead {
        /// The consuming stage.
        consumer: usize,
        /// Index of the (read) access being staged.
        access_idx: usize,
        /// Elements per reload round per block (symbolic).
        tile_elems: ExprId,
        /// Reload rounds per block (symbolic).
        rounds: ExprId,
    },
}

/// Applies one step to the program.
///
/// # Panics
///
/// Panics on malformed steps (axis already tiled, bad positions, non-read
/// access for `CacheRead`, mismatched spatial ranks for `ComputeAt`). Sketch
/// generation only emits well-formed steps.
pub fn apply(p: &mut Program, step: &Step) {
    match step {
        Step::Tile { stage, axis, factors } => tile(p, *stage, *axis, factors),
        Step::Reorder { stage, order } => reorder(p, *stage, order),
        Step::Bind { stage, pos, kind } => {
            p.stages[*stage].loops[*pos].kind = *kind;
        }
        Step::UnrollPragma { stage, max_step } => {
            p.stages[*stage].unroll_max_step = Some(*max_step);
        }
        Step::ComputeAt { stage, target, pos } => compute_at(p, *stage, *target, *pos),
        Step::CacheRead { consumer, access_idx, tile_elems, rounds } => {
            cache_read(p, *consumer, *access_idx, *tile_elems, *rounds);
        }
    }
}

/// Applies a whole schedule in order.
pub fn apply_all(p: &mut Program, steps: &[Step]) {
    for s in steps {
        apply(p, s);
    }
}

fn tile(p: &mut Program, stage: usize, axis: AxisId, factors: &[ExprId]) {
    let pos = {
        let st = &p.stages[stage];
        let positions: Vec<usize> = st
            .loops
            .iter()
            .enumerate()
            .filter(|(_, l)| l.axis == axis)
            .map(|(i, _)| i)
            .collect();
        assert_eq!(positions.len(), 1, "tile requires exactly one loop for the axis");
        positions[0]
    };
    let axis_extent = p.stages[stage].axis(axis).extent;
    let axis_name = p.stages[stage].axis(axis).name.clone();
    let total = p.pool.consti(axis_extent);
    let inner_prod = p.pool.product(factors);
    let outer_extent = p.pool.div(total, inner_prod);
    let one = p.pool.constf(1.0);

    let mut new_loops = Vec::with_capacity(factors.len() + 1);
    // Outer derived level: multiplier = product of all inner factors.
    new_loops.push(Loop {
        axis,
        extent: outer_extent,
        mult: inner_prod,
        kind: LoopKind::Serial,
        name: format!("{axis_name}.0"),
    });
    for (i, &f) in factors.iter().enumerate() {
        // Multiplier of level i = product of the levels inside it.
        let inner: Vec<ExprId> = factors[i + 1..].to_vec();
        let mult = if inner.is_empty() { one } else { p.pool.product(&inner) };
        new_loops.push(Loop {
            axis,
            extent: f,
            mult,
            kind: LoopKind::Serial,
            name: format!("{axis_name}.{}", i + 1),
        });
    }
    p.stages[stage].loops.splice(pos..=pos, new_loops);
}

fn reorder(p: &mut Program, stage: usize, order: &[usize]) {
    let st = &mut p.stages[stage];
    assert_eq!(order.len(), st.loops.len(), "reorder must list every loop");
    let mut seen = vec![false; order.len()];
    for &o in order {
        assert!(!seen[o], "reorder order must be a permutation");
        seen[o] = true;
    }
    let old = st.loops.clone();
    st.loops = order.iter().map(|&i| old[i].clone()).collect();
}

fn compute_at(p: &mut Program, stage: usize, target: usize, pos: usize) {
    assert_ne!(stage, target, "cannot compute a stage at itself");
    // Map the target's spatial axes (in declaration order) to the stage's.
    let target_spatial: Vec<AxisId> = p.stages[target]
        .axes
        .iter()
        .filter(|a| a.kind == AxisKind::Spatial)
        .map(|a| a.id)
        .collect();
    let stage_spatial: Vec<AxisId> = p.stages[stage]
        .axes
        .iter()
        .filter(|a| a.kind == AxisKind::Spatial)
        .map(|a| a.id)
        .collect();
    assert_eq!(
        target_spatial.len(),
        stage_spatial.len(),
        "compute_at requires matching spatial ranks"
    );
    let map_axis = |a: AxisId| {
        target_spatial
            .iter()
            .position(|&t| t == a)
            .map(|i| stage_spatial[i])
    };
    // The fused stage iterates the spatial portion of the target's nest
    // inner to `pos` (the per-thread output tile), serially.
    let mut new_loops = Vec::new();
    for l in p.stages[target].loops[pos + 1..].iter() {
        let is_spatial =
            p.stages[target].axis(l.axis).kind == AxisKind::Spatial && !l.kind.is_gpu_binding();
        if is_spatial {
            if let Some(mapped) = map_axis(l.axis) {
                new_loops.push(Loop {
                    axis: mapped,
                    extent: l.extent,
                    mult: l.mult,
                    kind: LoopKind::Serial,
                    name: l.name.clone(),
                });
            }
        }
    }
    let st = &mut p.stages[stage];
    st.loops = new_loops;
    st.compute_at = Some((target, pos));
}

fn cache_read(
    p: &mut Program,
    consumer: usize,
    access_idx: usize,
    tile_elems: ExprId,
    rounds: ExprId,
) -> usize {
    let (src, dtype_bytes) = {
        let acc = &p.stages[consumer].accesses[access_idx];
        assert_eq!(acc.kind, AccessKind::Read, "cache_read stages a read access");
        let buf = &p.buffers[acc.buffer.0 as usize];
        (acc.buffer, buf.dtype_bytes)
    };
    let src_name = p.buffers[src.0 as usize].name.clone();
    let shared = p.add_buffer(
        format!("{src_name}.shared"),
        vec![],
        dtype_bytes,
        MemScope::Shared,
    );
    // Repoint the consumer's access at the shared copy.
    p.stages[consumer].accesses[access_idx].buffer = shared;
    let stage = Stage {
        name: format!("{src_name}.shared.load"),
        axes: vec![],
        loops: vec![],
        accesses: vec![],
        op_counts: crate::OpCounts::default(),
        kind: StageKind::CacheRead,
        compute_at: Some((consumer, 0)),
        unroll_max_step: None,
        cache: Some(CacheReadInfo { src, shared, tile_elems, rounds }),
    };
    // Insert before the consumer so stage order stays execution order.
    p.stages.insert(consumer, stage);
    // Fix up stage indices that shifted.
    let fix = |idx: &mut usize| {
        if *idx >= consumer {
            *idx += 1;
        }
    };
    for (i, st) in p.stages.iter_mut().enumerate() {
        if i == consumer {
            continue; // the new cache stage itself: points at old `consumer`
        }
        if let Some((t, _)) = &mut st.compute_at {
            fix(t);
        }
    }
    for sv in &mut p.sched_vars {
        if let crate::sketch::SchedVarKind::Split { stage, .. } = &mut sv.kind {
            fix(stage);
        }
    }
    // The cache stage's own compute_at must point at the shifted consumer.
    p.stages[consumer].compute_at = Some((consumer + 1, 0));
    consumer
}

/// Helper: positions of the loops of `axis` in a stage, outer → inner.
pub fn axis_loop_positions(stage: &Stage, axis: AxisId) -> Vec<usize> {
    stage
        .loops
        .iter()
        .enumerate()
        .filter(|(_, l)| l.axis == axis)
        .map(|(i, _)| i)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AccessPattern, OpCounts};

    fn dense(n: i64, m: i64, k: i64) -> Program {
        let mut p = Program::new();
        let a = p.add_buffer("A", vec![n, k], 4, MemScope::Global);
        let b = p.add_buffer("B", vec![k, m], 4, MemScope::Global);
        let d = p.add_buffer("D", vec![n, m], 4, MemScope::Global);
        let (ai, aj, ak) = (AxisId(0), AxisId(1), AxisId(2));
        p.add_stage(
            "dense",
            vec![
                ("i".into(), n, AxisKind::Spatial),
                ("j".into(), m, AxisKind::Spatial),
                ("k".into(), k, AxisKind::Reduction),
            ],
            vec![
                AccessPattern { buffer: a, kind: AccessKind::Read, dims: vec![vec![(ai, 1)], vec![(ak, 1)]] },
                AccessPattern { buffer: b, kind: AccessKind::Read, dims: vec![vec![(ak, 1)], vec![(aj, 1)]] },
                AccessPattern { buffer: d, kind: AccessKind::Write, dims: vec![vec![(ai, 1)], vec![(aj, 1)]] },
            ],
            OpCounts { fadd: 1.0, fmul: 1.0, ..OpCounts::default() },
        );
        p
    }

    #[test]
    fn tile_splits_extents_and_mults() {
        let mut p = dense(64, 128, 256);
        let t1 = p.vars.fresh("T1");
        let t2 = p.vars.fresh("T2");
        let (x1, x2) = (p.pool.var(t1), p.pool.var(t2));
        apply(&mut p, &Step::Tile { stage: 0, axis: AxisId(0), factors: vec![x1, x2] });
        let st = &p.stages[0];
        assert_eq!(st.loops.len(), 5); // i.0 i.1 i.2 j k
        let vals = p.pool.eval_all(&[4.0, 2.0]);
        // i.0 extent = 64 / (4*2) = 8, mult = 8.
        assert_eq!(vals[st.loops[0].extent.index()], 8.0);
        assert_eq!(vals[st.loops[0].mult.index()], 8.0);
        // i.1 extent 4, mult 2; i.2 extent 2, mult 1.
        assert_eq!(vals[st.loops[1].extent.index()], 4.0);
        assert_eq!(vals[st.loops[1].mult.index()], 2.0);
        assert_eq!(vals[st.loops[2].extent.index()], 2.0);
        assert_eq!(vals[st.loops[2].mult.index()], 1.0);
        assert_eq!(st.loops[0].name, "i.0");
        assert_eq!(st.loops[2].name, "i.2");
    }

    #[test]
    fn tile_preserves_total_iterations() {
        let mut p = dense(64, 128, 256);
        let t1 = p.vars.fresh("T1");
        let x1 = p.pool.var(t1);
        apply(&mut p, &Step::Tile { stage: 0, axis: AxisId(2), factors: vec![x1] });
        let total = p.total_iters(0);
        // For any divisor value the total iteration count is unchanged.
        for v in [1.0, 4.0, 16.0, 256.0] {
            assert_eq!(p.pool.eval(total, &[v]), (64 * 128 * 256) as f64);
        }
    }

    #[test]
    fn reorder_permutes() {
        let mut p = dense(8, 8, 8);
        apply(&mut p, &Step::Reorder { stage: 0, order: vec![2, 0, 1] });
        let names: Vec<&str> = p.stages[0].loops.iter().map(|l| l.name.as_str()).collect();
        assert_eq!(names, vec!["k", "i", "j"]);
    }

    #[test]
    #[should_panic(expected = "permutation")]
    fn reorder_rejects_duplicates() {
        let mut p = dense(8, 8, 8);
        apply(&mut p, &Step::Reorder { stage: 0, order: vec![0, 0, 1] });
    }

    #[test]
    fn bind_and_unroll() {
        let mut p = dense(8, 8, 8);
        apply(&mut p, &Step::Bind { stage: 0, pos: 0, kind: LoopKind::BlockIdx });
        let u = p.vars.fresh("UNROLL0");
        let ue = p.pool.var(u);
        apply(&mut p, &Step::UnrollPragma { stage: 0, max_step: ue });
        assert_eq!(p.stages[0].loops[0].kind, LoopKind::BlockIdx);
        assert!(p.stages[0].unroll_max_step.is_some());
    }

    #[test]
    fn footprint_shrinks_with_tiling() {
        // After tiling j, the A-tile within the inner loops is smaller.
        let mut p = dense(64, 128, 256);
        let t = p.vars.fresh("TJ");
        let x = p.pool.var(t);
        apply(&mut p, &Step::Tile { stage: 0, axis: AxisId(1), factors: vec![x] });
        // loops now: i, j.0, j.1, k. Footprint of B (access 1) over {j.1, k}:
        let fp = p.footprint_elems(0, 1, &|pos, _| pos >= 2);
        // B tile = K x TJ = 256 * TJ.
        assert_eq!(p.pool.eval(fp, &[4.0]), 1024.0);
        assert_eq!(p.pool.eval(fp, &[16.0]), 4096.0);
    }

    #[test]
    fn compute_at_copies_inner_spatial_tile() {
        let mut p = dense(64, 128, 256);
        // Epilogue stage: E[i,j] = D[i,j] + C[j] (bias add).
        let c = p.add_buffer("C", vec![128], 4, MemScope::Global);
        let e = p.add_buffer("E", vec![64, 128], 4, MemScope::Global);
        let (ei, ej) = (AxisId(0), AxisId(1));
        let epi = p.add_stage(
            "bias_add",
            vec![("i".into(), 64, AxisKind::Spatial), ("j".into(), 128, AxisKind::Spatial)],
            vec![
                AccessPattern { buffer: c, kind: AccessKind::Read, dims: vec![vec![(ej, 1)]] },
                AccessPattern { buffer: e, kind: AccessKind::Write, dims: vec![vec![(ei, 1)], vec![(ej, 1)]] },
            ],
            OpCounts { fadd: 1.0, ..OpCounts::default() },
        );
        // Tile anchor's i and j, bind outers, then fuse epilogue at pos 1.
        let t = p.vars.fresh("TI1");
        let x = p.pool.var(t);
        apply(&mut p, &Step::Tile { stage: 0, axis: AxisId(0), factors: vec![x] });
        // anchor loops: i.0 i.1 j k
        apply(&mut p, &Step::ComputeAt { stage: epi, target: 0, pos: 1 });
        let st = &p.stages[epi];
        assert_eq!(st.compute_at, Some((0, 1)));
        // Inner spatial loops of target after pos 1: j (extent 128).
        assert_eq!(st.loops.len(), 1);
        assert_eq!(p.pool.eval(st.loops[0].extent, &[4.0]), 128.0);
    }

    #[test]
    fn cache_read_inserts_stage_and_repoints() {
        let mut p = dense(64, 128, 256);
        let te = p.pool.consti(512);
        let r = p.pool.consti(16);
        apply(
            &mut p,
            &Step::CacheRead { consumer: 0, access_idx: 0, tile_elems: te, rounds: r },
        );
        assert_eq!(p.stages.len(), 2);
        assert_eq!(p.stages[0].kind, StageKind::CacheRead);
        let info = p.stages[0].cache.expect("cache info");
        assert_eq!(p.buffers[info.shared.0 as usize].scope, MemScope::Shared);
        // The consumer (now stage 1) reads the shared buffer.
        assert_eq!(p.stages[1].accesses[0].buffer, info.shared);
        assert_eq!(p.stages[0].compute_at, Some((1, 0)));
    }

    #[test]
    fn two_cache_reads_keep_indices_consistent() {
        let mut p = dense(64, 128, 256);
        let te = p.pool.consti(512);
        let r = p.pool.consti(16);
        apply(&mut p, &Step::CacheRead { consumer: 0, access_idx: 0, tile_elems: te, rounds: r });
        apply(&mut p, &Step::CacheRead { consumer: 1, access_idx: 1, tile_elems: te, rounds: r });
        assert_eq!(p.stages.len(), 3);
        // Final order: A-load, B-load, dense. Both loads point at the anchor.
        assert_eq!(p.stages[0].kind, StageKind::CacheRead);
        assert_eq!(p.stages[1].kind, StageKind::CacheRead);
        assert_eq!(p.stages[2].kind, StageKind::Compute);
        assert_eq!(p.stages[0].compute_at, Some((2, 0)));
        assert_eq!(p.stages[1].compute_at, Some((2, 0)));
        // Consumer's two read accesses now hit two distinct shared buffers.
        let b0 = p.stages[2].accesses[0].buffer;
        let b1 = p.stages[2].accesses[1].buffer;
        assert_ne!(b0, b1);
        assert_eq!(p.buffers[b0.0 as usize].scope, MemScope::Shared);
        assert_eq!(p.buffers[b1.0 as usize].scope, MemScope::Shared);
    }
}
