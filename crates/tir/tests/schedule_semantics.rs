//! Semantic tests of the schedule-transformation pipeline: applying steps
//! must preserve iteration counts, keep footprints consistent, and mirror
//! the structures in the paper's Fig. 3.

use felix_tir::steps::{apply, Step};
use felix_tir::{
    AccessKind, AccessPattern, AxisId, AxisKind, LoopKind, MemScope, OpCounts, Program,
};

fn conv_like() -> Program {
    // Simplified conv: spatial [k, p], reduction [rc], strided input access.
    let mut p = Program::new();
    let input = p.add_buffer("In", vec![64, 66], 4, MemScope::Global);
    let w = p.add_buffer("W", vec![128, 64], 4, MemScope::Global);
    let out = p.add_buffer("Out", vec![128, 64], 4, MemScope::Global);
    let (ak, ap, arc) = (AxisId(0), AxisId(1), AxisId(2));
    p.add_stage(
        "conv",
        vec![
            ("k".into(), 128, AxisKind::Spatial),
            ("p".into(), 64, AxisKind::Spatial),
            ("rc".into(), 64, AxisKind::Reduction),
        ],
        vec![
            AccessPattern {
                buffer: input,
                kind: AccessKind::Read,
                dims: vec![vec![(arc, 1)], vec![(ap, 1)]],
            },
            AccessPattern {
                buffer: w,
                kind: AccessKind::Read,
                dims: vec![vec![(ak, 1)], vec![(arc, 1)]],
            },
            AccessPattern {
                buffer: out,
                kind: AccessKind::Write,
                dims: vec![vec![(ak, 1)], vec![(ap, 1)]],
            },
        ],
        OpCounts { fadd: 1.0, fmul: 1.0, ..OpCounts::default() },
    );
    p
}

#[test]
fn tiling_then_reorder_preserves_iteration_space() {
    let mut p = conv_like();
    let t1 = p.vars.fresh("T1");
    let t2 = p.vars.fresh("T2");
    let (x1, x2) = (p.pool.var(t1), p.pool.var(t2));
    apply(&mut p, &Step::Tile { stage: 0, axis: AxisId(0), factors: vec![x1] });
    apply(&mut p, &Step::Tile { stage: 0, axis: AxisId(2), factors: vec![x2] });
    // loops: k.0 k.1 p rc.0 rc.1 -> reorder to k.0 p rc.0 k.1 rc.1
    apply(&mut p, &Step::Reorder { stage: 0, order: vec![0, 2, 3, 1, 4] });
    let total = p.total_iters(0);
    for (a, b) in [(4.0, 8.0), (8.0, 2.0), (128.0, 64.0)] {
        assert_eq!(p.pool.eval(total, &[a, b]), (128 * 64 * 64) as f64);
    }
    // Multipliers survive the reorder: k.1 still has mult 1.
    let k1 = p.stages[0].loops.iter().find(|l| l.name == "k.1").unwrap();
    assert_eq!(p.pool.eval(k1.mult, &[4.0, 8.0]), 1.0);
    let k0 = p.stages[0].loops.iter().find(|l| l.name == "k.0").unwrap();
    assert_eq!(p.pool.eval(k0.mult, &[4.0, 8.0]), 4.0);
}

#[test]
fn footprint_respects_multipliers_after_tiling() {
    let mut p = conv_like();
    let t = p.vars.fresh("T");
    let x = p.pool.var(t);
    apply(&mut p, &Step::Tile { stage: 0, axis: AxisId(2), factors: vec![x] });
    // Footprint of In over only the inner rc.1 level: T elements in dim 0.
    let rc1 = p.stages[0]
        .loops
        .iter()
        .position(|l| l.name == "rc.1")
        .unwrap();
    let fp = p.footprint_elems(0, 0, &|pos, _| pos == rc1);
    // In[rc, p]: dim0 span = T, dim1 span = 1 (p not in scope).
    assert_eq!(p.pool.eval(fp, &[8.0]), 8.0);
    // Over rc.0 only: (64/T - 1) * T + 1 elements of dim 0.
    let rc0 = p.stages[0]
        .loops
        .iter()
        .position(|l| l.name == "rc.0")
        .unwrap();
    let fp = p.footprint_elems(0, 0, &|pos, _| pos == rc0);
    assert_eq!(p.pool.eval(fp, &[8.0]), ((64.0 / 8.0 - 1.0) * 8.0 + 1.0));
}

#[test]
fn binds_are_reflected_in_extent_products() {
    let mut p = conv_like();
    let t = p.vars.fresh("T");
    let x = p.pool.var(t);
    apply(&mut p, &Step::Tile { stage: 0, axis: AxisId(1), factors: vec![x] });
    // loops: k p.0 p.1 rc
    apply(&mut p, &Step::Bind { stage: 0, pos: 0, kind: LoopKind::BlockIdx });
    apply(&mut p, &Step::Bind { stage: 0, pos: 1, kind: LoopKind::BlockIdx });
    apply(&mut p, &Step::Bind { stage: 0, pos: 2, kind: LoopKind::ThreadIdx });
    let blocks = p.extent_product(0, LoopKind::BlockIdx);
    let threads = p.extent_product(0, LoopKind::ThreadIdx);
    assert_eq!(p.pool.eval(blocks, &[16.0]), 128.0 * (64.0 / 16.0));
    assert_eq!(p.pool.eval(threads, &[16.0]), 16.0);
}

#[test]
fn unroll_pragma_is_per_stage() {
    let mut p = conv_like();
    let u = p.vars.fresh("U");
    let ue = p.pool.var(u);
    apply(&mut p, &Step::UnrollPragma { stage: 0, max_step: ue });
    assert_eq!(p.stages[0].unroll_max_step, Some(ue));
}

#[test]
#[should_panic(expected = "exactly one loop")]
fn tiling_twice_panics() {
    let mut p = conv_like();
    let t1 = p.vars.fresh("T1");
    let x1 = p.pool.var(t1);
    apply(&mut p, &Step::Tile { stage: 0, axis: AxisId(0), factors: vec![x1] });
    // The axis now has two loops; tiling again must fail loudly.
    apply(&mut p, &Step::Tile { stage: 0, axis: AxisId(0), factors: vec![x1] });
}

#[test]
fn cache_read_constraint_tracks_shared_usage() {
    // The multi-level-tiling sketch's shared-memory constraint grows with
    // the staged tiles, so oversized tiles must violate it.
    use felix_graph::lower::lower_subgraph;
    use felix_graph::{Op, Subgraph};
    use felix_tir::sketch::{multi_level_tiling_sketch, round_to_valid, HardwareParams};
    let sg = Subgraph { ops: vec![Op::Dense { m: 4096, k: 4096, n: 4096 }] };
    let p0 = lower_subgraph(&sg);
    let sk = multi_level_tiling_sketch(&p0, &HardwareParams::default());
    let p = sk.program;
    // Tiles of 2x16x16 per axis with k-tile 64: shared tile =
    // (512*64 + 64*512)*4 bytes = 256 KiB >> 48 KiB.
    let huge = round_to_valid(&p, &[2.0, 16.0, 16.0, 2.0, 16.0, 16.0, 64.0, 64.0]);
    assert!(!p.constraints_ok(&huge, 0.0));
    assert!(p
        .violated_constraints(&huge, 0.0)
        .iter()
        .any(|d| d.contains("shared memory")));
}

#[test]
fn pretty_printing_marks_compute_at() {
    use felix_graph::lower::lower_subgraph;
    use felix_graph::{EwKind, Op, Subgraph};
    use felix_tir::sketch::{multi_level_tiling_sketch, HardwareParams};
    let sg = Subgraph {
        ops: vec![
            Op::Dense { m: 256, k: 256, n: 256 },
            Op::Elementwise { kind: EwKind::Relu, shape: vec![256, 256] },
        ],
    };
    let p0 = lower_subgraph(&sg);
    let sk = multi_level_tiling_sketch(&p0, &HardwareParams::default());
    let txt = sk.program.pretty(None);
    assert!(txt.contains("compute_at"), "{txt}");
    assert!(txt.contains(".shared.load"), "{txt}");
}

#[test]
fn verify_survives_byte_patched_nan_assignment() {
    // Regression: `verify` sorted loops by multiplier with
    // `partial_cmp(..).expect("finite mult")`, so one NaN schedule value —
    // e.g. from a diverged descent step rounded straight into a verifier
    // call — aborted the process instead of reporting errors. The sort now
    // uses a NaN-last total order and the coverage/multiplier tolerance
    // checks are written NaN-failing, so a poisoned assignment comes back
    // as verification errors.
    use felix_tir::verify;
    let mut p = conv_like();
    let t = p.vars.fresh("T");
    let x = p.pool.var(t);
    apply(&mut p, &Step::Tile { stage: 0, axis: AxisId(0), factors: vec![x] });
    // A valid assignment passes.
    assert!(verify(&p, &[8.0]).is_ok());
    // Byte-patch a quiet NaN with a nonzero payload (not the `0.0 / 0.0`
    // canonical one) so the comparator sees an arbitrary NaN bit pattern.
    let patched = f64::from_bits(0x7FF8_0000_0000_1234);
    assert!(patched.is_nan());
    let errs = verify(&p, &[patched]).expect_err("NaN assignment must fail, not abort");
    assert!(
        errs.iter().any(|e| e.message.contains("cover")),
        "expected a coverage error, got: {errs:?}"
    );
}
