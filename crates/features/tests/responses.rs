//! Feature-response tests: each schedule knob must move the features that
//! the paper's cost model relies on, in the right direction.

use felix_features::{extract_features, feature_index, FeatureSet};
use felix_graph::lower::lower_subgraph;
use felix_graph::{EwKind, Op, Subgraph};
use felix_tir::sketch::{
    multi_level_tiling_sketch, round_to_valid, thread_bind_sketch, HardwareParams,
};
use felix_tir::Program;

fn dense_sketch() -> (Program, FeatureSet) {
    let sg = Subgraph { ops: vec![Op::Dense { m: 512, k: 512, n: 512 }] };
    let p0 = lower_subgraph(&sg);
    let sk = multi_level_tiling_sketch(&p0, &HardwareParams::default());
    let mut p = sk.program;
    let fs = extract_features(&mut p);
    (p, fs)
}

fn eval(p: &Program, fs: &FeatureSet, raw: &[f64]) -> Vec<f64> {
    let vals = round_to_valid(p, raw);
    fs.eval(p, &vals)
}

#[test]
fn unroll_var_drives_unrolled_iters() {
    let (p, fs) = dense_sketch();
    let lo = eval(&p, &fs, &[1.0, 16.0, 4.0, 1.0, 16.0, 4.0, 8.0, 1.0]);
    let hi = eval(&p, &fs, &[1.0, 16.0, 4.0, 1.0, 16.0, 4.0, 8.0, 256.0]);
    let i = feature_index("unrolled_iters");
    assert!(hi[i] > lo[i]);
    assert_eq!(lo[feature_index("unroll_max_step")], 1.0);
    assert_eq!(hi[feature_index("unroll_max_step")], 256.0);
}

#[test]
fn vthreads_multiply_parallelism() {
    let (p, fs) = dense_sketch();
    let no_v = eval(&p, &fs, &[1.0, 16.0, 4.0, 1.0, 16.0, 4.0, 8.0, 64.0]);
    let v2 = eval(&p, &fs, &[2.0, 16.0, 4.0, 2.0, 16.0, 4.0, 8.0, 64.0]);
    assert_eq!(no_v[feature_index("vthreads")], 1.0);
    assert_eq!(v2[feature_index("vthreads")], 4.0);
    assert!(
        v2[feature_index("total_parallelism")]
            >= no_v[feature_index("total_parallelism")]
    );
}

#[test]
fn issued_reads_exceed_unique_reads_without_staging() {
    // Thread-bind schedules re-read operands across parallel lanes.
    let sg = Subgraph { ops: vec![Op::Dense { m: 256, k: 256, n: 256 }] };
    let p0 = lower_subgraph(&sg);
    let sk = thread_bind_sketch(&p0, &HardwareParams::default());
    let mut p = sk.program;
    let fs = extract_features(&mut p);
    let vals = round_to_valid(&p, &[128.0, 2.0, 64.0]);
    let v = fs.eval(&p, &vals);
    let issued = v[feature_index("global_read_transactions")];
    let unique = v[feature_index("global_read_bytes")] / 4.0; // same scale
    assert!(issued > 0.0);
    assert!(
        v[feature_index("read_reuse")] > 10.0,
        "untiled matmul re-reads heavily: reuse {}",
        v[feature_index("read_reuse")]
    );
    assert_eq!(issued * 4.0, unique * 4.0, "bytes = 4 x transactions");
}

#[test]
fn staging_moves_traffic_from_global_to_shared() {
    let (p, fs) = dense_sketch();
    let v = eval(&p, &fs, &[1.0, 16.0, 4.0, 1.0, 16.0, 4.0, 8.0, 64.0]);
    // With cache_read staging, the anchor reads shared, not global.
    assert!(v[feature_index("shared_read_elems")] > 0.0);
    assert!(v[feature_index("shared_traffic_bytes")] > 0.0);
    // Global traffic ≈ staging traffic + epilogue-less writes.
    assert!(
        v[feature_index("global_read_bytes")]
            >= v[feature_index("shared_traffic_bytes")]
    );
}

#[test]
fn epilogue_features_appear_for_fused_subgraphs() {
    let sg = Subgraph {
        ops: vec![
            Op::Dense { m: 512, k: 512, n: 512 },
            Op::Elementwise { kind: EwKind::BiasAdd, shape: vec![512, 512] },
            Op::Elementwise { kind: EwKind::Relu, shape: vec![512, 512] },
        ],
    };
    let p0 = lower_subgraph(&sg);
    let sk = multi_level_tiling_sketch(&p0, &HardwareParams::default());
    let mut p = sk.program;
    let fs = extract_features(&mut p);
    let vals = round_to_valid(&p, &vec![2.0; p.vars.len()]);
    let v = fs.eval(&p, &vals);
    assert_eq!(v[feature_index("epilogue_stage_count")], 2.0);
    assert!(v[feature_index("epilogue_iters")] > 0.0);
    assert!(v[feature_index("epilogue_flops")] > 0.0);
    // The bias vector contributes parameter bytes.
    assert_eq!(v[feature_index("epilogue_param_bytes")], 512.0 * 4.0);
}

#[test]
fn coalescing_proxy_distinguishes_thread_strides() {
    // For the dense sketch, B[j,k] is indexed by the thread axis j in its
    // first dim but k in the last: threads stride by TK in memory. The
    // proxy must be < 1 and respond to the k-tile.
    let (p, fs) = dense_sketch();
    let v = eval(&p, &fs, &[1.0, 16.0, 4.0, 1.0, 16.0, 4.0, 8.0, 64.0]);
    let c = v[feature_index("coalescing_proxy")];
    assert!(c > 0.0 && c <= 1.0, "coalescing proxy {c} out of range");
}

#[test]
fn flops_are_schedule_invariant_but_structure_is_not() {
    let (p, fs) = dense_sketch();
    let a = eval(&p, &fs, &[1.0, 8.0, 2.0, 1.0, 8.0, 2.0, 4.0, 16.0]);
    let b = eval(&p, &fs, &[2.0, 32.0, 1.0, 2.0, 32.0, 1.0, 64.0, 512.0]);
    assert_eq!(a[feature_index("flops_total")], b[feature_index("flops_total")]);
    assert_ne!(
        a[feature_index("threads_per_block")],
        b[feature_index("threads_per_block")]
    );
    assert_ne!(a[feature_index("k_inner_iters")], b[feature_index("k_inner_iters")]);
}

#[test]
fn loop_overhead_is_select_based_and_schedule_dependent() {
    // The loop-overhead feature is the paper's int_add example: it contains
    // a genuine select() over loop triviality, so it is non-smooth as
    // extracted, piecewise in the schedule, and responsive to tile choices.
    let (p, fs) = dense_sketch();
    let i = feature_index("loop_overhead_iops");
    assert!(
        !felix_expr::is_smooth(&p.pool, fs.exprs[i]),
        "loop overhead must contain select()"
    );
    let a = eval(&p, &fs, &[1.0, 16.0, 1.0, 1.0, 16.0, 1.0, 8.0, 64.0]);
    let b = eval(&p, &fs, &[1.0, 16.0, 4.0, 1.0, 16.0, 4.0, 8.0, 64.0]);
    assert_ne!(a[i], b[i], "feature must respond to tiling choices");
    assert!(a[i] > 0.0 && b[i] > 0.0);
}
