//! The program feature extractor (paper §3.3).
//!
//! Runs as an analysis over a (symbolic) [`Program`] and produces
//! [`FEATURE_COUNT`] = 82 program features *as expressions of the schedule
//! variables*: operation counts, parallelism structure, global/shared/local
//! memory traffic, per-access tile and reuse statistics, and smooth-able
//! discrete proxies (which deliberately contain `select`, exercising the
//! smoothing pipeline exactly as the paper's `int_add` example does).
//!
//! The same formulas serve both tools: Felix differentiates them after
//! smoothing; Ansor evaluates them at integer points to feed its cost model.

use felix_expr::{CmpOp, ExprId};
use felix_tir::{AccessKind, AxisKind, LoopKind, MemScope, Program, StageKind};

/// Number of features extracted per program.
pub const FEATURE_COUNT: usize = 82;

/// The names of all extracted features, index-aligned with
/// [`FeatureSet::exprs`].
pub const FEATURE_NAMES: [&str; FEATURE_COUNT] = [
    // A: arithmetic totals
    "float_add_total",
    "float_mul_total",
    "float_div_total",
    "float_special_total",
    "float_cmp_total",
    "int_ops_total",
    "flops_total",
    // B: intensity
    "flops_per_block",
    "flops_per_thread",
    "arithmetic_intensity",
    // C: parallelism
    "num_blocks",
    "threads_per_block",
    "vthreads",
    "total_threads",
    "total_parallelism",
    "warps_per_block",
    "work_per_thread",
    "serial_iters_per_thread",
    "innermost_serial_extent",
    "unroll_max_step",
    "unrolled_iters",
    "vector_lanes",
    // D: structure
    "loop_depth",
    "num_stages",
    "num_cache_stages",
    "num_fused_epilogues",
    "n_reduction_axes",
    "n_spatial_axes",
    "reduction_iters",
    "spatial_iters",
    "k_outer_iters",
    "k_inner_iters",
    // E: global memory
    "global_read_transactions",
    "global_write_transactions",
    "global_read_bytes",
    "global_write_bytes",
    "global_read_unique_bytes",
    "global_write_unique_bytes",
    "read_reuse",
    "write_reuse",
    "bytes_per_thread",
    "bytes_per_block",
    "traffic_total_bytes",
    "traffic_per_flop",
    // F: shared memory
    "shared_bytes_per_block",
    "shared_load_rounds",
    "shared_tile_elems",
    "shared_traffic_bytes",
    "shared_read_elems",
    "shared_per_thread",
    "sync_points_est",
    // G: local / registers
    "local_acc_elems_per_thread",
    "local_traffic_elems",
    "reg_pressure_est",
    "thread_tile_spatial",
    "block_tile_spatial",
    // H: anchor access detail
    "read0_tile_per_thread",
    "read0_reuse_dist",
    "read0_innermost_stride",
    "read1_tile_per_thread",
    "read1_reuse_dist",
    "read1_innermost_stride",
    "write_tile_per_thread",
    "unique_per_block",
    // I: epilogues
    "epilogue_iters",
    "epilogue_global_read_elems",
    "epilogue_flops",
    "epilogue_param_bytes",
    "epilogue_stage_count",
    // J: discrete proxies (contain select; smoothed by Felix)
    "loop_overhead_iops",
    "branch_select_ops",
    "warp_util_proxy",
    "occupancy_proxy",
    "tail_effect_proxy",
    "coalescing_proxy",
    "launch_overhead_const",
    "unroll_benefit_proxy",
    // K: extent statistics
    "max_loop_extent",
    "geo_mean_extent",
    "num_loops_total",
    "num_serial_loops",
    "num_bound_loops",
];

/// Index of a feature by name.
///
/// # Panics
///
/// Panics if the name is not in [`FEATURE_NAMES`].
pub fn feature_index(name: &str) -> usize {
    FEATURE_NAMES
        .iter()
        .position(|&n| n == name)
        .unwrap_or_else(|| panic!("unknown feature {name}"))
}

/// The extracted feature formulas of a program.
#[derive(Clone, Debug)]
pub struct FeatureSet {
    /// One expression per feature, aligned with [`FEATURE_NAMES`].
    pub exprs: Vec<ExprId>,
}

impl FeatureSet {
    /// Evaluates the raw feature values at a variable assignment.
    pub fn eval(&self, p: &Program, values: &[f64]) -> Vec<f64> {
        let vals = p.pool.eval_all(values);
        self.exprs.iter().map(|e| vals[e.index()]).collect()
    }
}

/// Iteration count contributed by the nests enclosing a `compute_at` stage.
fn enclosing_iters(p: &mut Program, stage: usize) -> ExprId {
    match p.stages[stage].compute_at {
        None => p.pool.constf(1.0),
        Some((target, pos)) => {
            let outer = enclosing_iters(p, target);
            let exts: Vec<ExprId> = p.stages[target].loops[..=pos.min(p.stages[target].loops.len().saturating_sub(1))]
                .iter()
                .map(|l| l.extent)
                .collect();
            let prod = p.pool.product(&exts);
            p.pool.mul(outer, prod)
        }
    }
}

/// The root (grid-launching) stage of a `compute_at` chain.
fn root_of(p: &Program, mut stage: usize) -> usize {
    while let Some((t, _)) = p.stages[stage].compute_at {
        stage = t;
    }
    stage
}

/// Index of the anchor: the root compute stage with the most work.
fn anchor_of(p: &Program) -> usize {
    let mut best = 0;
    let mut best_work = -1.0;
    for (i, st) in p.stages.iter().enumerate() {
        if st.kind != StageKind::Compute || st.compute_at.is_some() {
            continue;
        }
        let iters: f64 = st.axes.iter().map(|a| a.extent as f64).product();
        let work = iters * st.op_counts.flops().max(0.5);
        if work > best_work {
            best_work = work;
            best = i;
        }
    }
    best
}

/// Memory operations *issued* by one access over a stage's execution.
///
/// A loop multiplies the issue count when it indexes the access, or when it
/// is a parallel lane (block/thread/vthread): redundant reads across serial
/// inner loops are register-hoisted by the compiler, but every parallel lane
/// issues its own load even when the address repeats across lanes. This
/// distinction is what makes untiled schedules pay for their lack of reuse.
fn access_transactions(p: &mut Program, stage: usize, access_idx: usize) -> ExprId {
    let enc = enclosing_iters(p, stage);
    let access_axes: Vec<felix_tir::AxisId> = p.stages[stage].accesses[access_idx]
        .dims
        .iter()
        .flatten()
        .map(|&(a, _)| a)
        .collect();
    let is_read = p.stages[stage].accesses[access_idx].kind == AccessKind::Read;
    let exts: Vec<ExprId> = p.stages[stage]
        .loops
        .iter()
        .filter(|l| {
            access_axes.contains(&l.axis)
                || (is_read
                    && (l.kind.is_gpu_binding() || l.kind == LoopKind::Parallel))
        })
        .map(|l| l.extent)
        .collect();
    let own = p.pool.product(&exts);
    p.pool.mul(enc, own)
}

/// Extracts the 82 feature formulas from a (symbolic) program.
///
/// # Panics
///
/// Panics if the program has no compute stage.
#[allow(clippy::too_many_lines)]
pub fn extract_features(p: &mut Program) -> FeatureSet {
    assert!(
        p.stages.iter().any(|s| s.kind == StageKind::Compute),
        "program must have a compute stage"
    );
    let anchor = anchor_of(p);
    let one = p.pool.constf(1.0);

    // ---- Arithmetic totals over all compute stages -------------------
    let mut fadd = p.pool.constf(0.0);
    let mut fmul = p.pool.constf(0.0);
    let mut fdiv = p.pool.constf(0.0);
    let mut fspecial = p.pool.constf(0.0);
    let mut fcmp = p.pool.constf(0.0);
    let mut iops = p.pool.constf(0.0);
    for s in 0..p.stages.len() {
        if p.stages[s].kind != StageKind::Compute {
            continue;
        }
        let enc = enclosing_iters(p, s);
        let own = {
            let exts: Vec<ExprId> = p.stages[s].loops.iter().map(|l| l.extent).collect();
            p.pool.product(&exts)
        };
        let execs = p.pool.mul(enc, own);
        let oc = p.stages[s].op_counts;
        let terms = [
            (oc.fadd, &mut fadd),
            (oc.fmul, &mut fmul),
            (oc.fdiv, &mut fdiv),
            (oc.fspecial, &mut fspecial),
            (oc.fcmp, &mut fcmp),
            (oc.iops, &mut iops),
        ];
        for (count, acc) in terms {
            if count != 0.0 {
                let c = p.pool.constf(count);
                let t = p.pool.mul(execs, c);
                *acc = p.pool.add(*acc, t);
            }
        }
    }
    let mut flops = p.pool.add(fadd, fmul);
    flops = p.pool.add(flops, fdiv);
    flops = p.pool.add(flops, fspecial);
    flops = p.pool.add(flops, fcmp);

    // ---- Parallelism structure of the anchor -------------------------
    let blocks = p.extent_product(anchor, LoopKind::BlockIdx);
    let threads = p.extent_product(anchor, LoopKind::ThreadIdx);
    let vthreads = p.extent_product(anchor, LoopKind::VThread);
    let total_threads = p.pool.mul(blocks, threads);
    let total_par = p.pool.mul(total_threads, vthreads);
    let c32 = p.pool.constf(32.0);
    let warps = p.pool.div(threads, c32);
    let flops_per_block = p.pool.div(flops, blocks);
    let flops_per_thread = p.pool.div(flops, total_threads);
    let serial_kinds = [LoopKind::Serial, LoopKind::Unroll, LoopKind::Vectorize];
    let serial_exts: Vec<ExprId> = p.stages[anchor]
        .loops
        .iter()
        .filter(|l| serial_kinds.contains(&l.kind))
        .map(|l| l.extent)
        .collect();
    let serial_iters = p.pool.product(&serial_exts);
    let innermost = p.stages[anchor]
        .loops
        .last()
        .map(|l| l.extent)
        .unwrap_or(one);
    let unroll = p.stages[anchor].unroll_max_step.unwrap_or(one);
    let unrolled_iters = p.pool.min(serial_iters, unroll);
    let vec_lanes = p.extent_product(anchor, LoopKind::Vectorize);

    // ---- Structure ----------------------------------------------------
    let loop_depth = p.pool.consti(p.stages[anchor].loops.len() as i64);
    let num_stages = p.pool.consti(p.stages.len() as i64);
    let n_cache = p
        .stages
        .iter()
        .filter(|s| s.kind == StageKind::CacheRead)
        .count();
    let num_cache = p.pool.consti(n_cache as i64);
    let n_epilogues = p
        .stages
        .iter()
        .filter(|s| s.kind == StageKind::Compute && s.compute_at.is_some())
        .count();
    let num_epilogues = p.pool.consti(n_epilogues as i64);
    let n_red = p.stages[anchor]
        .axes
        .iter()
        .filter(|a| a.kind == AxisKind::Reduction)
        .count();
    let n_spa = p.stages[anchor].axes.len() - n_red;
    let n_red_e = p.pool.consti(n_red as i64);
    let n_spa_e = p.pool.consti(n_spa as i64);
    let red_exts: Vec<ExprId> = p.stages[anchor]
        .loops
        .iter()
        .filter(|l| p.stages[anchor].axis(l.axis).kind == AxisKind::Reduction)
        .map(|l| l.extent)
        .collect();
    let reduction_iters = p.pool.product(&red_exts);
    let spa_exts: Vec<ExprId> = p.stages[anchor]
        .loops
        .iter()
        .filter(|l| p.stages[anchor].axis(l.axis).kind == AxisKind::Spatial)
        .map(|l| l.extent)
        .collect();
    let spatial_iters = p.pool.product(&spa_exts);
    // Outer reduction levels have a non-unit (symbolic) multiplier.
    let kout_exts: Vec<ExprId> = p.stages[anchor]
        .loops
        .iter()
        .filter(|l| {
            p.stages[anchor].axis(l.axis).kind == AxisKind::Reduction
                && p.pool.as_const(l.mult) != Some(1.0)
        })
        .map(|l| l.extent)
        .collect();
    let k_outer = p.pool.product(&kout_exts);
    let k_inner = p.pool.div(reduction_iters, k_outer);

    // ---- Global memory -------------------------------------------------
    let mut g_read_tx = p.pool.constf(0.0);
    let mut g_write_tx = p.pool.constf(0.0);
    let mut g_read_unique = p.pool.constf(0.0);
    let mut g_write_unique = p.pool.constf(0.0);
    for s in 0..p.stages.len() {
        if p.stages[s].kind != StageKind::Compute {
            continue;
        }
        for a in 0..p.stages[s].accesses.len() {
            let buf = p.stages[s].accesses[a].buffer;
            if p.buffers[buf.0 as usize].scope != MemScope::Global {
                continue;
            }
            let tx = access_transactions(p, s, a);
            let enc = enclosing_iters(p, s);
            let fp = p.footprint_elems(s, a, &|_, _| true);
            let unique = p.pool.mul(enc, fp);
            match p.stages[s].accesses[a].kind {
                AccessKind::Read => {
                    g_read_tx = p.pool.add(g_read_tx, tx);
                    g_read_unique = p.pool.add(g_read_unique, unique);
                }
                AccessKind::Write => {
                    g_write_tx = p.pool.add(g_write_tx, tx);
                    g_write_unique = p.pool.add(g_write_unique, unique);
                }
            }
        }
    }
    // Cache-read staging traffic (global → shared).
    let mut shared_tile = p.pool.constf(0.0);
    let mut shared_rounds = p.pool.constf(0.0);
    let mut shared_traffic_elems = p.pool.constf(0.0);
    for s in 0..p.stages.len() {
        let Some(info) = p.stages[s].cache else { continue };
        let root = root_of(p, s);
        let root_blocks = p.extent_product(root, LoopKind::BlockIdx);
        let per_block = p.pool.mul(info.tile_elems, info.rounds);
        let total = p.pool.mul(per_block, root_blocks);
        shared_traffic_elems = p.pool.add(shared_traffic_elems, total);
        shared_tile = p.pool.add(shared_tile, info.tile_elems);
        shared_rounds = p.pool.add(shared_rounds, info.rounds);
        g_read_tx = p.pool.add(g_read_tx, total);
        g_read_unique = p.pool.add(g_read_unique, total);
    }
    let four = p.pool.constf(4.0);
    let g_read_bytes = p.pool.mul(g_read_tx, four);
    let g_write_bytes = p.pool.mul(g_write_tx, four);
    let g_read_unique_bytes = p.pool.mul(g_read_unique, four);
    let g_write_unique_bytes = p.pool.mul(g_write_unique, four);
    let ru_den = p.pool.add(g_read_unique, one);
    let read_reuse = p.pool.div(g_read_tx, ru_den);
    let wu_den = p.pool.add(g_write_unique, one);
    let write_reuse = p.pool.div(g_write_tx, wu_den);
    let traffic = p.pool.add(g_read_bytes, g_write_bytes);
    let bytes_per_thread = p.pool.div(traffic, total_threads);
    let bytes_per_block = p.pool.div(traffic, blocks);
    let fl_den = p.pool.add(flops, one);
    let traffic_per_flop = p.pool.div(traffic, fl_den);
    let tr_den = p.pool.add(traffic, one);
    let arith_intensity = p.pool.div(flops, tr_den);

    // ---- Shared memory --------------------------------------------------
    let shared_bytes_per_block = p.pool.mul(shared_tile, four);
    let shared_traffic_bytes = p.pool.mul(shared_traffic_elems, four);
    let mut shared_read_elems = p.pool.constf(0.0);
    for s in 0..p.stages.len() {
        if p.stages[s].kind != StageKind::Compute {
            continue;
        }
        for a in 0..p.stages[s].accesses.len() {
            let buf = p.stages[s].accesses[a].buffer;
            if p.buffers[buf.0 as usize].scope != MemScope::Shared {
                continue;
            }
            let tx = access_transactions(p, s, a);
            shared_read_elems = p.pool.add(shared_read_elems, tx);
        }
    }
    let th_den = p.pool.add(threads, one);
    let shared_per_thread = p.pool.div(shared_bytes_per_block, th_den);
    let sync_points = shared_rounds;

    // ---- Local / register tiles ----------------------------------------
    let serial_spatial_exts: Vec<ExprId> = p.stages[anchor]
        .loops
        .iter()
        .filter(|l| {
            serial_kinds.contains(&l.kind)
                && p.stages[anchor].axis(l.axis).kind == AxisKind::Spatial
        })
        .map(|l| l.extent)
        .collect();
    let thread_tile_spatial = p.pool.product(&serial_spatial_exts);
    let block_tile_spatial = {
        let t = p.pool.mul(thread_tile_spatial, threads);
        p.pool.mul(t, vthreads)
    };
    let mut local_traffic = p.pool.constf(0.0);
    for s in 0..p.stages.len() {
        if p.stages[s].kind != StageKind::Compute {
            continue;
        }
        for a in 0..p.stages[s].accesses.len() {
            let buf = p.stages[s].accesses[a].buffer;
            if p.buffers[buf.0 as usize].scope != MemScope::Local {
                continue;
            }
            let tx = access_transactions(p, s, a);
            local_traffic = p.pool.add(local_traffic, tx);
        }
    }
    let local_acc = thread_tile_spatial;
    // Register pressure: accumulator tile + one register per staged operand.
    let n_reads = p.pool.consti(
        p.stages[anchor]
            .accesses
            .iter()
            .filter(|a| a.kind == AccessKind::Read)
            .count() as i64,
    );
    let extra = p.pool.mul(n_reads, innermost);
    let reg_pressure = p.pool.add(local_acc, extra);

    // ---- Anchor access detail -------------------------------------------
    let serial_filter = |_: usize, l: &felix_tir::Loop| {
        matches!(l.kind, LoopKind::Serial | LoopKind::Unroll | LoopKind::Vectorize)
    };
    let read_idxs: Vec<usize> = p.stages[anchor]
        .accesses
        .iter()
        .enumerate()
        .filter(|(_, a)| a.kind == AccessKind::Read)
        .map(|(i, _)| i)
        .collect();
    let mut read_stats = Vec::new();
    for slot in 0..2usize {
        match read_idxs.get(slot) {
            Some(&a) => {
                let tile = p.footprint_elems(anchor, a, &serial_filter);
                // Reuse distance: iterations between consecutive touches of
                // the same element ≈ the serial iterations not indexed by
                // this access.
                let tx_axes: Vec<felix_tir::AxisId> = p.stages[anchor].accesses[a]
                    .dims
                    .iter()
                    .flatten()
                    .map(|&(ax, _)| ax)
                    .collect();
                let non_contrib: Vec<ExprId> = p.stages[anchor]
                    .loops
                    .iter()
                    .filter(|l| {
                        serial_kinds.contains(&l.kind) && !tx_axes.contains(&l.axis)
                    })
                    .map(|l| l.extent)
                    .collect();
                let reuse = p.pool.product(&non_contrib);
                // Coalescing: stride of the innermost thread loop in the
                // access's last dimension.
                let stride = {
                    let tpos = p.stages[anchor].loops_of_kind(LoopKind::ThreadIdx);
                    match tpos.last() {
                        Some(&tp) => {
                            let l = p.stages[anchor].loops[tp].clone();
                            let last_dim = p.stages[anchor].accesses[a]
                                .dims
                                .last()
                                .cloned()
                                .unwrap_or_default();
                            let contrib: i64 = last_dim
                                .iter()
                                .filter(|(ax, _)| *ax == l.axis)
                                .map(|(_, s)| s.abs())
                                .sum();
                            if contrib == 0 {
                                // Not indexed by the thread: broadcast (good).
                                p.pool.constf(0.0)
                            } else {
                                let c = p.pool.consti(contrib);
                                p.pool.mul(l.mult, c)
                            }
                        }
                        None => one,
                    }
                };
                read_stats.push((tile, reuse, stride));
            }
            None => {
                let zero = p.pool.constf(0.0);
                read_stats.push((zero, one, zero));
            }
        }
    }
    let write_idx = p.stages[anchor]
        .accesses
        .iter()
        .position(|a| a.kind == AccessKind::Write);
    let write_tile = match write_idx {
        Some(a) => p.footprint_elems(anchor, a, &serial_filter),
        None => one,
    };
    let block_filter =
        |_: usize, l: &felix_tir::Loop| l.kind != LoopKind::BlockIdx;
    let mut unique_per_block = p.pool.constf(0.0);
    for a in 0..p.stages[anchor].accesses.len() {
        let fp = p.footprint_elems(anchor, a, &block_filter);
        unique_per_block = p.pool.add(unique_per_block, fp);
    }

    // ---- Epilogues --------------------------------------------------------
    let mut epi_iters = p.pool.constf(0.0);
    let mut epi_reads = p.pool.constf(0.0);
    let mut epi_flops = p.pool.constf(0.0);
    let mut epi_param_bytes = p.pool.constf(0.0);
    for s in 0..p.stages.len() {
        if p.stages[s].kind != StageKind::Compute || p.stages[s].compute_at.is_none() {
            continue;
        }
        let enc = enclosing_iters(p, s);
        let exts: Vec<ExprId> = p.stages[s].loops.iter().map(|l| l.extent).collect();
        let own = p.pool.product(&exts);
        let execs = p.pool.mul(enc, own);
        epi_iters = p.pool.add(epi_iters, execs);
        let fl = p.pool.constf(p.stages[s].op_counts.flops());
        let f = p.pool.mul(execs, fl);
        epi_flops = p.pool.add(epi_flops, f);
        for a in 0..p.stages[s].accesses.len() {
            let acc_kind = p.stages[s].accesses[a].kind;
            let buf_id = p.stages[s].accesses[a].buffer.0 as usize;
            let (scope, ndims, bytes) = {
                let buf = &p.buffers[buf_id];
                (buf.scope, buf.dims.len(), buf.bytes())
            };
            if acc_kind == AccessKind::Read && scope == MemScope::Global {
                let tx = access_transactions(p, s, a);
                epi_reads = p.pool.add(epi_reads, tx);
                if ndims == 1 {
                    let b = p.pool.consti(bytes);
                    epi_param_bytes = p.pool.add(epi_param_bytes, b);
                }
            }
        }
    }
    let epi_count = num_epilogues;

    // ---- Discrete proxies (contain select; smoothed downstream) -----------
    let mut loop_overhead = p.pool.constf(0.0);
    let mut cum = one;
    for l in p.stages[anchor].loops.clone() {
        cum = p.pool.mul(cum, l.extent);
        if l.kind.is_gpu_binding() {
            continue;
        }
        let two = p.pool.constf(2.0);
        let half = p.pool.constf(0.5);
        let cond = p.pool.cmp(CmpOp::Gt, l.extent, one);
        let cost = p.pool.select(cond, two, half);
        let term = p.pool.mul(cum, cost);
        loop_overhead = p.pool.add(loop_overhead, term);
    }
    let branch_selects = {
        let cond = p.pool.cmp(CmpOp::Gt, k_inner, one);
        let t = reduction_iters;
        p.pool.select(cond, t, one)
    };
    let c16 = p.pool.constf(16.0);
    let wu_d = p.pool.add(threads, c16);
    let warp_util = p.pool.div(threads, wu_d);
    let c4096 = p.pool.constf(4096.0);
    let oc_d = p.pool.add(total_threads, c4096);
    let occupancy = p.pool.div(total_threads, oc_d);
    let c80 = p.pool.constf(80.0);
    let te_d = p.pool.add(blocks, c80);
    let tail = p.pool.div(blocks, te_d);
    let two = p.pool.constf(2.0);
    let strides_sum = {
        let s = p.pool.add(read_stats[0].2, read_stats[1].2);
        p.pool.add(two, s)
    };
    let coalescing = p.pool.div(two, strides_sum);
    let launch_overhead = num_stages;
    let ub_d = p.pool.add(serial_iters, one);
    let unroll_benefit = p.pool.div(unrolled_iters, ub_d);

    // ---- Extent statistics --------------------------------------------------
    let mut max_extent = one;
    for l in p.stages[anchor].loops.clone() {
        max_extent = p.pool.max(max_extent, l.extent);
    }
    let total_iters = p.total_iters(anchor);
    let nl = p.stages[anchor].loops.len().max(1);
    let inv = p.pool.constf(1.0 / nl as f64);
    let geo_mean = p.pool.pow(total_iters, inv);
    let num_loops = p.pool.consti(nl as i64);
    let num_serial = p.pool.consti(
        p.stages[anchor]
            .loops
            .iter()
            .filter(|l| serial_kinds.contains(&l.kind))
            .count() as i64,
    );
    let num_bound = p.pool.consti(
        p.stages[anchor]
            .loops
            .iter()
            .filter(|l| l.kind.is_gpu_binding())
            .count() as i64,
    );

    let exprs = vec![
        // A
        fadd, fmul, fdiv, fspecial, fcmp, iops, flops,
        // B
        flops_per_block, flops_per_thread, arith_intensity,
        // C
        blocks, threads, vthreads, total_threads, total_par, warps,
        flops_per_thread, serial_iters, innermost, unroll, unrolled_iters,
        vec_lanes,
        // D
        loop_depth, num_stages, num_cache, num_epilogues, n_red_e, n_spa_e,
        reduction_iters, spatial_iters, k_outer, k_inner,
        // E
        g_read_tx, g_write_tx, g_read_bytes, g_write_bytes,
        g_read_unique_bytes, g_write_unique_bytes, read_reuse, write_reuse,
        bytes_per_thread, bytes_per_block, traffic, traffic_per_flop,
        // F
        shared_bytes_per_block, shared_rounds, shared_tile,
        shared_traffic_bytes, shared_read_elems, shared_per_thread,
        sync_points,
        // G
        local_acc, local_traffic, reg_pressure, thread_tile_spatial,
        block_tile_spatial,
        // H
        read_stats[0].0, read_stats[0].1, read_stats[0].2,
        read_stats[1].0, read_stats[1].1, read_stats[1].2,
        write_tile, unique_per_block,
        // I
        epi_iters, epi_reads, epi_flops, epi_param_bytes, epi_count,
        // J
        loop_overhead, branch_selects, warp_util, occupancy, tail,
        coalescing, launch_overhead, unroll_benefit,
        // K
        max_extent, geo_mean, num_loops, num_serial, num_bound,
    ];
    assert_eq!(exprs.len(), FEATURE_COUNT, "feature count drifted");
    FeatureSet { exprs }
}

#[cfg(test)]
mod tests {
    use super::*;
    use felix_tir::sketch::{
        generate_sketches, multi_level_tiling_sketch, HardwareParams,
    };
    use felix_tir::{AccessPattern, AxisId, Program};

    fn dense(n: i64, m: i64, k: i64) -> Program {
        let mut p = Program::new();
        let a = p.add_buffer("A", vec![n, k], 4, MemScope::Global);
        let b = p.add_buffer("B", vec![k, m], 4, MemScope::Global);
        let d = p.add_buffer("D", vec![n, m], 4, MemScope::Global);
        let (ai, aj, ak) = (AxisId(0), AxisId(1), AxisId(2));
        p.add_stage(
            "dense",
            vec![
                ("i".into(), n, AxisKind::Spatial),
                ("j".into(), m, AxisKind::Spatial),
                ("k".into(), k, AxisKind::Reduction),
            ],
            vec![
                AccessPattern { buffer: a, kind: AccessKind::Read, dims: vec![vec![(ai, 1)], vec![(ak, 1)]] },
                AccessPattern { buffer: b, kind: AccessKind::Read, dims: vec![vec![(ak, 1)], vec![(aj, 1)]] },
                AccessPattern { buffer: d, kind: AccessKind::Write, dims: vec![vec![(ai, 1)], vec![(aj, 1)]] },
            ],
            felix_tir::OpCounts { fadd: 1.0, fmul: 1.0, ..Default::default() },
        );
        p
    }

    fn idx(name: &str) -> usize {
        FEATURE_NAMES.iter().position(|&n| n == name).expect("known feature")
    }

    #[test]
    fn names_are_unique_and_82() {
        let mut names = FEATURE_NAMES.to_vec();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), FEATURE_COUNT);
    }

    #[test]
    fn naive_dense_features() {
        let mut p = dense(64, 128, 256);
        let fs = extract_features(&mut p);
        let v = fs.eval(&p, &[]);
        let total = (64 * 128 * 256) as f64;
        assert_eq!(v[idx("float_add_total")], total);
        assert_eq!(v[idx("float_mul_total")], total);
        assert_eq!(v[idx("flops_total")], 2.0 * total);
        // Naive program: no GPU bindings.
        assert_eq!(v[idx("num_blocks")], 1.0);
        assert_eq!(v[idx("threads_per_block")], 1.0);
        assert_eq!(v[idx("reduction_iters")], 256.0);
        assert_eq!(v[idx("spatial_iters")], (64 * 128) as f64);
    }

    #[test]
    fn sketch_features_respond_to_schedule_vars() {
        let p0 = dense(512, 512, 512);
        let sk = multi_level_tiling_sketch(&p0, &HardwareParams::default());
        let mut p = sk.program;
        let fs = extract_features(&mut p);
        // Vars: TI1,TI2,TI3, TJ1,TJ2,TJ3, TK1, UNROLL0.
        let a = fs.eval(&p, &[1.0, 16.0, 2.0, 1.0, 16.0, 2.0, 8.0, 16.0]);
        let b = fs.eval(&p, &[1.0, 8.0, 4.0, 1.0, 8.0, 4.0, 8.0, 16.0]);
        // threads: 16*16=256 vs 8*8=64.
        assert_eq!(a[idx("threads_per_block")], 256.0);
        assert_eq!(b[idx("threads_per_block")], 64.0);
        // Larger serial tiles -> bigger per-thread register tile.
        assert!(b[idx("thread_tile_spatial")] > a[idx("thread_tile_spatial")]);
        // flops are schedule-invariant.
        assert_eq!(a[idx("flops_total")], b[idx("flops_total")]);
        assert_eq!(a[idx("flops_total")], 2.0 * 512.0 * 512.0 * 512.0);
    }

    #[test]
    fn shared_memory_features_track_tiles() {
        let p0 = dense(512, 512, 512);
        let sk = multi_level_tiling_sketch(&p0, &HardwareParams::default());
        let mut p = sk.program;
        let fs = extract_features(&mut p);
        let v = fs.eval(&p, &[1.0, 16.0, 2.0, 1.0, 16.0, 2.0, 8.0, 16.0]);
        // Block spatial tile: i covers 16*2=32 rows, j covers 32 cols;
        // k1 = 8. A-tile = 32x8, B-tile = 8x32 => 256 + 256 elems.
        assert_eq!(v[idx("shared_tile_elems")], 512.0);
        assert_eq!(v[idx("shared_bytes_per_block")], 2048.0);
        // Rounds = K / TK1 = 64, summed over both cache stages.
        assert_eq!(v[idx("shared_load_rounds")], 128.0);
    }

    #[test]
    fn traffic_decreases_with_bigger_k_tile() {
        // Bigger TK1 -> fewer reload rounds but bigger tiles; per-block
        // traffic = rounds * (a_tile + b_tile) shrinks as spatial tiles grow.
        let p0 = dense(512, 512, 512);
        let sk = multi_level_tiling_sketch(&p0, &HardwareParams::default());
        let mut p = sk.program;
        let fs = extract_features(&mut p);
        let small_tiles = fs.eval(&p, &[1.0, 8.0, 1.0, 1.0, 8.0, 1.0, 8.0, 16.0]);
        let big_tiles = fs.eval(&p, &[1.0, 8.0, 8.0, 1.0, 8.0, 8.0, 8.0, 16.0]);
        assert!(
            big_tiles[idx("global_read_bytes")] < small_tiles[idx("global_read_bytes")],
            "bigger spatial tiles reuse more: {} vs {}",
            big_tiles[idx("global_read_bytes")],
            small_tiles[idx("global_read_bytes")]
        );
    }

    #[test]
    fn features_are_symbolic_in_sched_vars() {
        let p0 = dense(256, 256, 256);
        let sk = multi_level_tiling_sketch(&p0, &HardwareParams::default());
        let mut p = sk.program;
        let fs = extract_features(&mut p);
        let free = p.pool.free_vars(&fs.exprs);
        assert!(
            free.len() >= 6,
            "features must depend on schedule variables, got {free:?}"
        );
    }

    #[test]
    fn all_sketches_of_all_shapes_extract() {
        for (n, m, k) in [(1, 1000, 2048), (64, 64, 64), (1024, 32, 128)] {
            let p0 = dense(n, m, k);
            for sk in generate_sketches(&p0, &HardwareParams::default()) {
                let mut p = sk.program;
                let fs = extract_features(&mut p);
                let nvars = p.vars.len();
                let v = fs.eval(&p, &vec![2.0; nvars]);
                assert_eq!(v.len(), FEATURE_COUNT);
                assert!(
                    v.iter().all(|x| x.is_finite()),
                    "non-finite feature for {n}x{m}x{k} {}",
                    sk.name
                );
            }
        }
    }

    #[test]
    fn proxies_contain_select_for_smoothing() {
        // The paper's int_add example: features must contain select() so the
        // smoothing pipeline has something to do.
        let p0 = dense(256, 256, 256);
        let sk = multi_level_tiling_sketch(&p0, &HardwareParams::default());
        let mut p = sk.program;
        let fs = extract_features(&mut p);
        let smooth_already = fs
            .exprs
            .iter()
            .all(|&e| felix_expr::is_smooth(&p.pool, e));
        assert!(!smooth_already, "expected non-smooth operators in features");
    }
}
