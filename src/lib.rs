//! Workspace umbrella crate for the Felix reproduction.
//!
//! Re-exports every workspace crate under a short alias so integration tests
//! and examples can use a single dependency. See the individual crates for
//! the real APIs:
//!
//! - [`expr`]: symbolic expressions, autodiff, smoothing and rewriting
//! - [`egraph`]: equality-saturation engine
//! - [`tir`]: loop-nest IR and schedule primitives
//! - [`graph`]: tensor operators, computation graphs, the model zoo
//! - [`features`]: the 82-dimensional program feature extractor
//! - [`sim`]: GPU latency simulator, measurement clock, vendor baselines
//! - [`cost`]: MLP cost model, Adam, dataset generation
//! - [`records`]: durable tuning records, checkpoints, and the global
//!   schedule store
//! - [`ansor`]: evolutionary-search baseline
//! - [`felix`]: the gradient-descent tuner itself

pub use felix;
pub use felix_ansor as ansor;
pub use felix_cost as cost;
pub use felix_egraph as egraph;
pub use felix_expr as expr;
pub use felix_features as features;
pub use felix_graph as graph;
pub use felix_records as records;
pub use felix_sim as sim;
pub use felix_tir as tir;
