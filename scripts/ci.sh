#!/usr/bin/env bash
# Tier-1 gate: release build, full test suite, clippy with warnings denied.
# Everything is offline; no network access is needed.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo test -q
cargo clippy --workspace --all-targets -- -D warnings

# Per-crate test-time budget: no single crate's suite may exceed 60s of
# wall-clock. This keeps the workspace suite honest after the test-speed
# overhaul (shared pretrained models, shrunk corpora, debug-opt numeric
# crates); a regression past the budget fails CI rather than silently
# rotting back to multi-minute runs. Binaries are already built by the
# `cargo test -q` above, so this re-run measures execution, not compilation.
BUDGET_S=60
for crate in felix-egraph felix-expr felix-tir felix-graph felix-features \
             felix-sim felix-cost felix-records felix-ansor felix felix-bench \
             felix-repro felix-serve; do
    start=$SECONDS
    cargo test -q -p "$crate" >/dev/null
    elapsed=$((SECONDS - start))
    echo "test-time $crate: ${elapsed}s"
    if [ "$elapsed" -gt "$BUDGET_S" ]; then
        echo "FAIL: $crate test suite took ${elapsed}s (budget ${BUDGET_S}s)" >&2
        exit 1
    fi
done

# Chaos smoke: tune a tiny network end-to-end with 10-30% injected
# measurement failures. Asserts the run never panics, completes every round,
# converges to a finite latency, keeps failed samples out of the fine-tuning
# buffer, and respects the retry bound. The zero-fault bit-identity guarantee
# is exercised right next to it.
cargo test -q -p felix --test fault_tolerance chaos_tuning_converges_without_panicking
cargo test -q -p felix --test fault_tolerance zero_fault_plan_is_byte_identical_to_unconfigured_optimizer

# Resume smoke: checkpoint a tuning run every round, kill it halfway, resume
# from disk, and byte-compare the concatenated time-vs-latency curve against
# an uninterrupted run — at 1 and 4 tuner threads (the test loops over both).
# Store-disabled parity (empty record log bit-identical at 1/2/4 threads) and
# crash-truncated log recovery run alongside.
cargo test -q -p felix --test persistence resume_from_checkpoint_matches_uninterrupted_curve
cargo test -q -p felix --test persistence empty_record_log_is_bit_identical_at_every_thread_count
cargo test -q -p felix-records --test log_recovery

# Supervision smoke: the descent supervisor must be invisible on a healthy
# run (supervision-on candidates/curves/tasks byte-identical to
# supervision-off at 1, 2, and 4 tuner threads) and must carry a NaN-flooded
# cost model to completion — finite curve, restarted seeds, degraded
# sketches, no panic.
cargo test -q -p felix --test supervision supervision_on_is_bit_identical_to_supervision_off
cargo test -q -p felix --test supervision nan_cost_model_run_degrades_and_completes

# Tape-equivalence + SIMD-parity smoke: asserts the batched compiled tape
# (transposed feature seeding, batched penalty seeding, fused reverse sweep)
# is bit-identical per lane to both the batch-of-one tape and the
# pool-walking objective oracle at batch sizes 1/7/8/9/16/17 — spanning a
# partial-lane remainder around every monomorphized SIMD width (no timing
# claims in CI). The same binary re-checks supervision on/off candidate
# parity on the healthy path. The lane-remainder sweep also runs as a unit
# test over random DAGs at every batch size 1..=17.
TUNER_BENCH_SMOKE=1 FELIX_FAST=1 cargo run -q --release -p felix-bench --bin tuner_bench
cargo test -q -p felix-expr --test tape_equivalence every_lane_remainder_matches_scalar_bitwise

# Tape-cache smoke: cache-on tuning bit-identical to cache-off at 1/2/4
# threads, a warm second optimizer serving every objective from the cache,
# and a sketch-generator bump evicting (never serving) stale tapes.
cargo test -q -p felix --test tape_cache

# Schedule-cache smoke: tune a network against a store, kill the run, and
# re-tune the same network against the same store — the second run's
# time-to-first-schedule must be an exact cache hit served with zero
# measurement budget and zero RNG draws (asserted by the test and by the
# bench binary). Empty-store parity (1/2/4 threads), warm-start determinism,
# and kill-and-resume with a store attached run alongside; the bench binary
# re-checks the hit/warm/cold split end-to-end and writes BENCH_cache.json.
cargo test -q -p felix --test cache exact_hit_serves_schedule_without_rng_or_clock
cargo test -q -p felix --test cache empty_schedule_store_is_bit_identical_at_every_thread_count
cargo test -q -p felix --test cache warm_start_from_structural_near_miss_is_deterministic
cargo test -q -p felix --test cache kill_and_resume_with_store_attached_stays_byte_identical
TUNER_BENCH_SMOKE=1 FELIX_FAST=1 cargo run -q --release -p felix-bench --bin cache_bench

# Stale-cache smoke: flip every stored schedule's sketch-generator
# fingerprint on disk and re-attach — stale entries must be skipped and
# counted (never served), and the re-tune must be bit-identical to a
# storeless run.
cargo test -q -p felix --test cache stale_generator_entries_are_clean_misses_and_retuned

# Serve smoke: the tuning daemon end to end. Wire-protocol round-trips and
# hostile-input rejection; cross-tenant fairness plus single-job
# equivalence with the in-process optimize_all path; and the kill/chaos
# harness — SIGKILL the daemon mid-job at a seeded-random instant, restart
# on the same data directory, and byte-compare final results and WAL
# replay against an uninterrupted run. Crash tests are Unix-only and
# honor FELIX_SKIP_CRASH_TESTS=1 on platforms without SIGKILL semantics.
cargo test -q -p felix-serve --test protocol
cargo test -q -p felix-serve --test fairness
cargo test -q -p felix-serve --test crash_resume

# Lifecycle smoke: the job state machine under the same chaos harness.
# Cancellation and deadline expiry stay byte-deterministic across a
# SIGKILL sweep (kills land mid-cancel/mid-expiry); a poison job that
# crashes its worker three times is parked `quarantined` durably — across
# restarts — while healthy tenants keep completing; a full queue and an
# exhausted tenant quota reject with typed errors and leave the WAL
# untouched; SIGTERM drains gracefully (exit 0, no accepted job lost);
# and compaction rewrites the WAL to canonical form without changing any
# served result. Same Unix-only / FELIX_SKIP_CRASH_TESTS gates as above.
cargo test -q -p felix-serve --test lifecycle chaos_sweep_cancel_expiry_and_completion_are_byte_deterministic
cargo test -q -p felix-serve --test lifecycle poison_jobs_are_quarantined_while_healthy_tenants_keep_running
cargo test -q -p felix-serve --test lifecycle admission_control_rejects_without_touching_the_wal
cargo test -q -p felix-serve --test lifecycle sigterm_drains_gracefully_and_loses_no_accepted_job
cargo test -q -p felix-serve --test lifecycle compaction_shrinks_the_wal_to_canonical_form_and_keeps_results_served
