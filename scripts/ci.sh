#!/usr/bin/env bash
# Tier-1 gate: release build, full test suite, clippy with warnings denied.
# Everything is offline; no network access is needed.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo test -q
cargo clippy --workspace --all-targets -- -D warnings
