#!/usr/bin/env bash
# Tier-1 gate: release build, full test suite, clippy with warnings denied.
# Everything is offline; no network access is needed.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo test -q
cargo clippy --workspace --all-targets -- -D warnings

# Tape-equivalence smoke: asserts the compiled gradient tape is bit-identical
# to the pool-walking objective oracle (no timing claims in CI).
TUNER_BENCH_SMOKE=1 FELIX_FAST=1 cargo run -q --release -p felix-bench --bin tuner_bench
